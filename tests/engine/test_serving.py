"""Tests for the serving-loop simulator."""

import numpy as np
import pytest

from repro.engine.powerinfer import PowerInferEngine
from repro.serving.arrival import Request, poisson_arrivals
from repro.serving.simulator import simulate_serving
from repro.workloads.prompts import CHATGPT_PROMPTS


class TestArrivals:
    def test_arrival_times_sorted_and_positive(self, rng):
        reqs = poisson_arrivals(CHATGPT_PROMPTS, rate=2.0, n_requests=50, rng=rng)
        times = [r.arrival_time for r in reqs]
        assert times == sorted(times)
        assert times[0] > 0

    def test_rate_controls_density(self, rng):
        slow = poisson_arrivals(
            CHATGPT_PROMPTS, rate=0.5, n_requests=200, rng=np.random.default_rng(1)
        )
        fast = poisson_arrivals(
            CHATGPT_PROMPTS, rate=5.0, n_requests=200, rng=np.random.default_rng(1)
        )
        assert fast[-1].arrival_time < slow[-1].arrival_time

    def test_output_mixture(self, rng):
        reqs = poisson_arrivals(
            CHATGPT_PROMPTS,
            rate=1.0,
            n_requests=300,
            rng=rng,
            output_lengths=(8, 128),
            output_weights=(0.5, 0.5),
        )
        outputs = {r.output_len for r in reqs}
        assert outputs == {8, 128}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(CHATGPT_PROMPTS, rate=0.0, n_requests=5, rng=rng)
        with pytest.raises(ValueError):
            poisson_arrivals(CHATGPT_PROMPTS, rate=1.0, n_requests=-1, rng=rng)
        with pytest.raises(ValueError):
            poisson_arrivals(
                CHATGPT_PROMPTS, 1.0, 5, rng, output_lengths=(8,), output_weights=(0.5, 0.5)
            )
        with pytest.raises(ValueError):
            poisson_arrivals(
                CHATGPT_PROMPTS, 1.0, 5, rng, output_lengths=(), output_weights=()
            )

    def test_zero_requests_yield_empty_stream(self, rng):
        assert poisson_arrivals(CHATGPT_PROMPTS, rate=1.0, n_requests=0, rng=rng) == []

    def test_weight_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(
                CHATGPT_PROMPTS, 1.0, 5, rng,
                output_lengths=(8, 128), output_weights=(0.5, -0.5),
            )
        with pytest.raises(ValueError):
            poisson_arrivals(
                CHATGPT_PROMPTS, 1.0, 5, rng,
                output_lengths=(8, 128), output_weights=(0.0, 0.0),
            )
        with pytest.raises(ValueError):
            poisson_arrivals(
                CHATGPT_PROMPTS, 1.0, 5, rng,
                output_lengths=(8, 128), output_weights=(float("nan"), 1.0),
            )
        with pytest.raises(ValueError):
            poisson_arrivals(
                CHATGPT_PROMPTS, 1.0, 5, rng,
                output_lengths=(0, 128), output_weights=(0.5, 0.5),
            )

    def test_unnormalized_weights_are_normalized(self):
        scaled = poisson_arrivals(
            CHATGPT_PROMPTS, 1.0, 100, np.random.default_rng(7),
            output_lengths=(8, 128), output_weights=(3.0, 3.0),
        )
        unit = poisson_arrivals(
            CHATGPT_PROMPTS, 1.0, 100, np.random.default_rng(7),
            output_lengths=(8, 128), output_weights=(0.5, 0.5),
        )
        assert scaled == unit


class TestServing:
    @pytest.fixture(scope="class")
    def engine(self, mini_plan):
        return PowerInferEngine(mini_plan)

    def test_fcfs_no_overlap(self, engine, rng):
        reqs = poisson_arrivals(CHATGPT_PROMPTS, rate=50.0, n_requests=10, rng=rng)
        report = simulate_serving(engine, reqs)
        done = sorted(report.completed, key=lambda c: c.start_time)
        for a, b in zip(done, done[1:]):
            assert b.start_time >= a.finish_time - 1e-9

    def test_latency_at_least_service_time(self, engine, rng):
        reqs = poisson_arrivals(CHATGPT_PROMPTS, rate=5.0, n_requests=10, rng=rng)
        report = simulate_serving(engine, reqs)
        for c in report.completed:
            assert c.latency >= c.service_time - 1e-12
            assert c.queue_delay >= 0

    def test_overload_builds_queue(self, engine):
        # Back-to-back arrivals: queueing delay must grow with position.
        reqs = [
            Request(request_id=i, arrival_time=0.001 * i, input_len=16, output_len=32)
            for i in range(6)
        ]
        report = simulate_serving(engine, reqs)
        delays = [c.queue_delay for c in report.completed]
        assert delays[-1] > delays[0]
        assert report.utilization > 0.9

    def test_light_load_has_no_queueing(self, engine):
        reqs = [
            Request(request_id=i, arrival_time=100.0 * i, input_len=16, output_len=32)
            for i in range(3)
        ]
        report = simulate_serving(engine, reqs)
        assert report.mean_queue_delay == pytest.approx(0.0)
        assert report.utilization < 0.1

    def test_report_statistics(self, engine, rng):
        reqs = poisson_arrivals(CHATGPT_PROMPTS, rate=2.0, n_requests=12, rng=rng)
        report = simulate_serving(engine, reqs)
        assert report.n_requests == 12
        assert report.throughput_rps > 0
        assert report.tokens_per_second > 0
        p50 = report.latency_percentile(50)
        p95 = report.latency_percentile(95)
        assert p95 >= p50

    def test_empty_report_guards(self):
        from repro.serving.simulator import ServingReport

        report = ServingReport()
        assert report.throughput_rps == 0.0
        with pytest.raises(ValueError):
            report.latency_percentile(50)

    def test_empty_request_list(self, engine):
        report = simulate_serving(engine, [])
        assert report.n_requests == 0
        assert report.makespan == 0.0
        assert report.utilization == 0.0
        assert report.mean_queue_delay == 0.0

    def test_simultaneous_arrivals_fcfs_order(self, engine):
        reqs = [
            Request(request_id=i, arrival_time=0.0, input_len=16, output_len=8)
            for i in range(4)
        ]
        report = simulate_serving(engine, reqs)
        starts = [
            c.start_time
            for c in sorted(report.completed, key=lambda c: c.request.request_id)
        ]
        assert starts == sorted(starts)
