"""The paper's reported numbers, as structured data.

A single source of truth for paper-vs-measured comparisons: benches and
EXPERIMENTS.md draw the expected values from here instead of re-typing
them.  Each anchor records where in the paper the number appears.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperAnchor", "PAPER_ANCHORS", "anchor"]


@dataclass(frozen=True)
class PaperAnchor:
    """One quantitative claim from the paper.

    Attributes:
        key: Stable identifier used by benches.
        value: The reported number.
        unit: Unit string (``"tokens/s"``, ``"x"``, ``"fraction"``...).
        source: Where the paper states it.
        description: What the number means.
    """

    key: str
    value: float
    unit: str
    source: str
    description: str


_ANCHORS = [
    PaperAnchor("fp16.mean_tps.pc_high", 8.32, "tokens/s", "Abstract / §8.2",
                "Average FP16 generation speed on PC-High"),
    PaperAnchor("fp16.peak_tps.pc_high", 16.06, "tokens/s", "§8.2",
                "Peak FP16 generation speed on PC-High"),
    PaperAnchor("fp16.mean_speedup.pc_high", 7.23, "x", "§8.2",
                "Average FP16 speedup over llama.cpp on PC-High"),
    PaperAnchor("fp16.max_speedup.pc_high", 11.69, "x", "Abstract / §8.2",
                "Max FP16 speedup (Falcon-40B) on PC-High"),
    PaperAnchor("fp16.mean_speedup.pc_low", 5.01, "x", "§8.2",
                "Average FP16 speedup on PC-Low"),
    PaperAnchor("fp16.max_speedup.pc_low", 7.06, "x", "§8.2",
                "Peak FP16 speedup on PC-Low"),
    PaperAnchor("int4.mean_tps.pc_high", 13.20, "tokens/s", "Abstract / §8.2",
                "Average INT4 generation speed on PC-High"),
    PaperAnchor("int4.peak_tps.pc_high", 29.08, "tokens/s", "§8.2",
                "Peak INT4 generation speed on PC-High"),
    PaperAnchor("int4.mean_speedup.pc_high", 2.89, "x", "§8.2",
                "Average INT4 speedup on PC-High"),
    PaperAnchor("int4.opt175b_speedup.pc_high", 2.66, "x", "§8.2",
                "OPT-175B INT4 speedup over llama.cpp on PC-High"),
    PaperAnchor("batching.speedup.b32", 4.38, "x", "§8.2",
                "Falcon-40B speedup at batch 32 on PC-High"),
    PaperAnchor("batching.mean_speedup.lt32", 6.08, "x", "§8.2",
                "Mean speedup below batch 32"),
    PaperAnchor("cdf.layer_hot_fraction.opt", 0.26, "fraction", "Fig. 5a",
                "OPT-30B MLP-layer neurons carrying 80% of activations"),
    PaperAnchor("cdf.layer_hot_fraction.llama", 0.43, "fraction", "Fig. 5a",
                "LLaMA(ReGLU)-70B layer neurons carrying 80% of activations"),
    PaperAnchor("cdf.model_hot_fraction.opt", 0.17, "fraction", "Fig. 5b",
                "OPT-30B whole-model neurons carrying 80% of activations"),
    PaperAnchor("cdf.model_hot_fraction.llama", 0.26, "fraction", "Fig. 5b",
                "LLaMA-70B whole-model neurons carrying 80%"),
    PaperAnchor("load.gpu_share.powerinfer.pc_high", 0.70, "fraction", "§8.2 / Fig. 12",
                "GPU share of activated-neuron computation (PowerInfer)"),
    PaperAnchor("load.gpu_share.llamacpp.pc_high", 0.20, "fraction", "§8.2 / Fig. 12",
                "GPU share of neuron computation (llama.cpp average)"),
    PaperAnchor("load.gpu_share.memory_pressured", 0.42, "fraction", "§8.2 / Fig. 12",
                "GPU share for a 60 GB model on the 11 GB 2080Ti"),
    PaperAnchor("ablation.po_speedup.opt30b", 1.98, "x", "§8.3.1",
                "+PO stage speedup, OPT-30B"),
    PaperAnchor("ablation.engine_speedup.opt30b", 9.97, "x", "§8.3.1",
                "+Engine stage speedup, OPT-30B"),
    PaperAnchor("ablation.policy_speedup.opt30b", 10.47, "x", "§8.3.1",
                "+Policy stage speedup, OPT-30B"),
    PaperAnchor("operators.csr_crossover", 0.87, "fraction", "§8.3.2",
                "Sparsity where generic CSR starts beating dense on CPU"),
    PaperAnchor("predictor.max_share", 0.10, "fraction", "§8.3.3",
                "Predictor share of inference time (upper bound, mean)"),
    PaperAnchor("predictor.param_budget", 0.10, "fraction", "§5.1",
                "Predictor parameters as a fraction of LLM parameters"),
    PaperAnchor("a100.gap.llamacpp", 0.93, "fraction", "§8.3.4",
                "llama.cpp@4090 slowdown vs vLLM@A100, OPT-30B input 1"),
    PaperAnchor("a100.gap.powerinfer.input1", 0.18, "fraction", "§8.3.4",
                "PowerInfer@4090 slowdown vs vLLM@A100, OPT-30B input 1"),
    PaperAnchor("a100.gap.powerinfer.input64", 0.28, "fraction", "§8.3.4",
                "PowerInfer@4090 slowdown, input 64"),
    PaperAnchor("accuracy.predictor_floor", 0.95, "fraction", "§8.4",
                "Per-layer predictor accuracy floor"),
    PaperAnchor("motivation.flexgen_transfer_share", 0.995, "fraction", "§2.2",
                "FlexGen share of time on weight transfer, batch 1"),
    PaperAnchor("motivation.llamacpp_cpu_share", 0.98, "fraction", "§2.2",
                "llama.cpp share of computation on the CPU, OPT-30B"),
    PaperAnchor("insight2.crossover_batch", 32.0, "batch", "§3.2 / Fig. 6",
                "Batch size where load-then-execute overtakes the CPU"),
]

PAPER_ANCHORS: dict[str, PaperAnchor] = {a.key: a for a in _ANCHORS}


def anchor(key: str) -> float:
    """The paper-reported value for ``key``.

    Raises:
        KeyError: For unknown anchors (with the available keys listed).
    """
    try:
        return PAPER_ANCHORS[key].value
    except KeyError:
        raise KeyError(
            f"unknown paper anchor {key!r}; known: {sorted(PAPER_ANCHORS)}"
        ) from None
