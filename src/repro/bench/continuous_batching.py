"""Continuous vs static batching under Poisson load (beyond-paper study).

The paper's batching result (Figure 14) is throughput at a fixed batch
size; a serving deployment instead faces a request *stream*.  This driver
plays identical Poisson streams through the three schedulers the serving
subsystem offers — whole-request FCFS, static padded batching, and
iteration-level continuous batching — across arrival rates, and reports
the user-facing metrics (mean/p99 latency, TTFT, TBT, goodput) that show
why production systems schedule at token granularity.

All three schedulers see the same engine and the same streams, so the
comparison isolates the scheduling discipline.
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import make_engine
from repro.serving import (
    SLO,
    poisson_arrivals,
    simulate_batched_serving,
    simulate_continuous_serving,
    simulate_serving,
)
from repro.workloads import CHATGPT_PROMPTS

__all__ = ["ARRIVAL_RATES", "run_continuous_batching"]

MODEL = "opt-6.7b"
MACHINE = "pc-high"
DTYPE = "int4"
N_REQUESTS = 40
MAX_BATCH = 8
KV_CARVE_BYTES = 1.0 * 2**30
ARRIVAL_RATES = (0.1, 0.3, 1.0)
DEFAULT_SLO = SLO(ttft_target=5.0, tbt_target=0.5)


def _mean_latency(report) -> float:
    return float(np.mean([c.latency for c in report.completed]))


def run_continuous_batching() -> list[dict]:
    """FCFS vs static batching vs continuous batching across arrival rates."""
    engine = make_engine(
        "powerinfer", MODEL, MACHINE, DTYPE, kv_gpu_budget_bytes=KV_CARVE_BYTES
    )
    rows: list[dict] = []
    for rate in ARRIVAL_RATES:
        requests = poisson_arrivals(
            CHATGPT_PROMPTS,
            rate=rate,
            n_requests=N_REQUESTS,
            rng=np.random.default_rng(1234),
        )
        fcfs = simulate_serving(engine, requests)
        static = simulate_batched_serving(engine, requests, max_batch=MAX_BATCH)
        cont = simulate_continuous_serving(engine, requests, max_batch=MAX_BATCH)

        # Whole-request schedulers deliver all tokens at completion, so the
        # first token arrives with the last: TTFT equals latency.
        for name, report in (("fcfs", fcfs), ("static-batch", static)):
            rows.append(
                {
                    "rate_rps": rate,
                    "scheduler": name,
                    "mean_latency_s": _mean_latency(report),
                    "p99_latency_s": report.latency_percentile(99),
                    "mean_ttft_s": _mean_latency(report),
                    "p99_tbt_ms": float("nan"),
                    "tokens_per_s": report.tokens_per_second,
                    "goodput_rps": float("nan"),
                    "utilization": report.utilization,
                }
            )
        rows.append(
            {
                "rate_rps": rate,
                "scheduler": "continuous",
                "mean_latency_s": cont.mean_latency,
                "p99_latency_s": cont.latency_percentile(99),
                "mean_ttft_s": cont.mean_ttft,
                "p99_tbt_ms": cont.tbt_percentile(99) * 1e3,
                "tokens_per_s": cont.tokens_per_second,
                "goodput_rps": cont.goodput(DEFAULT_SLO),
                "utilization": cont.utilization,
            }
        )
    return rows
