"""Tests for whole-model INT4 quantization."""

import numpy as np
import pytest

from repro.models.config import Activation, tiny_config
from repro.models.kvcache import KVCache
from repro.models.transformer import Transformer
from repro.models.weights import init_weights
from repro.quant.model import quantize_model_weights


@pytest.fixture
def model_weights(rng):
    return init_weights(tiny_config(), rng)


class TestQuantization:
    def test_errors_bounded_and_reported(self, model_weights):
        quantized, report = quantize_model_weights(model_weights)
        assert report.n_matrices > 0
        assert 0 < report.mean_abs_error < report.max_abs_error
        # Group-quantized random N(0, 1/sqrt(d)) weights: tiny steps.
        assert report.max_abs_error < 0.2

    def test_most_parameters_quantized(self, model_weights):
        _, report = quantize_model_weights(model_weights)
        assert report.quantized_fraction > 0.9

    def test_biases_and_norms_untouched(self, model_weights):
        quantized, _ = quantize_model_weights(model_weights)
        assert np.array_equal(
            quantized.layers[0].fc1_bias, model_weights.layers[0].fc1_bias
        )
        assert np.array_equal(
            quantized.layers[0].attn_norm, model_weights.layers[0].attn_norm
        )

    def test_reglu_gate_quantized(self, rng):
        weights = init_weights(tiny_config(activation=Activation.REGLU), rng)
        quantized, _ = quantize_model_weights(weights)
        assert quantized.layers[0].gate is not None
        assert not np.array_equal(quantized.layers[0].gate, weights.layers[0].gate)

    def test_incompatible_matrix_skipped(self, rng):
        cfg = tiny_config(d_model=48)  # 48 % 32 != 0 -> attn mats skipped
        weights = init_weights(cfg, rng)
        quantized, report = quantize_model_weights(weights)
        assert np.array_equal(quantized.layers[0].wq, weights.layers[0].wq)
        assert report.quantized_fraction < 1.0


class TestQuantizedInference:
    def test_outputs_close_to_fp32(self, model_weights, rng):
        cfg = model_weights.config
        quantized, _ = quantize_model_weights(model_weights)
        tokens = rng.integers(0, cfg.vocab_size, size=8)
        full = Transformer(model_weights).forward(tokens, KVCache(cfg))
        q4 = Transformer(quantized).forward(tokens, KVCache(cfg))
        rel = np.abs(full - q4).max() / np.abs(full).max()
        assert rel < 0.5  # perturbed but same scale

    def test_answer_agreement_stays_high(self, rng):
        # Table 2's INT4 side: quantized inference preserves decisions.
        cfg = tiny_config()
        from repro.sparsity.powerlaw import synthesize_activation_probs

        probs = [
            synthesize_activation_probs(cfg.d_ffn, rng, mean_activation_rate=0.15)
            for _ in range(cfg.n_layers)
        ]
        weights = init_weights(cfg, rng, activation_probs=probs)
        quantized, _ = quantize_model_weights(weights)
        tokens = rng.integers(0, cfg.vocab_size, size=24)
        full = Transformer(weights).forward(tokens, KVCache(cfg))
        q4 = Transformer(quantized).forward(tokens, KVCache(cfg))
        # Untrained tiny models have many near-tied logits, so exact top-1
        # agreement is noisy; require that the quantized argmax stays among
        # the dense model's top candidates.
        ranks = (full > np.take_along_axis(
            full, q4.argmax(-1, keepdims=True), axis=-1
        )).sum(axis=-1)
        assert (ranks < 10).mean() > 0.9
        agreement = (full.argmax(-1) == q4.argmax(-1)).mean()
        assert agreement > 0.4
