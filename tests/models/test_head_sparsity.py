"""Tests for attention-head sparsity hooks (paper Section 2.1)."""

import numpy as np
import pytest

from repro.models.kvcache import KVCache
from repro.models.transformer import head_mask_from_norms


class TestHeadMaskFromNorms:
    def test_full_coverage_keeps_all_heads(self, rng):
        norms = rng.random((4, 8)) + 0.1
        assert head_mask_from_norms(norms, coverage=1.0).all()

    def test_dominant_head_alone_suffices(self):
        norms = np.array([[10.0, 0.01, 0.01, 0.01]])
        mask = head_mask_from_norms(norms, coverage=0.9)
        assert mask[0, 0]
        assert mask.sum() == 1

    def test_mask_covers_requested_energy(self, rng):
        norms = rng.random((6, 16))
        mask = head_mask_from_norms(norms, coverage=0.8)
        energy = norms**2
        covered = (energy * mask).sum(axis=1) / energy.sum(axis=1)
        assert (covered >= 0.8 - 1e-9).all()

    def test_minimality(self, rng):
        # Removing the weakest active head must drop below coverage.
        norms = rng.random((1, 16))
        mask = head_mask_from_norms(norms, coverage=0.8)[0]
        energy = norms[0] ** 2
        active = np.nonzero(mask)[0]
        weakest = active[np.argmin(energy[active])]
        reduced = mask.copy()
        reduced[weakest] = False
        assert (energy * reduced).sum() / energy.sum() < 0.8

    def test_zero_norms_handled(self):
        mask = head_mask_from_norms(np.zeros((2, 4)), coverage=0.9)
        assert mask.shape == (2, 4)

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            head_mask_from_norms(np.ones((1, 4)), coverage=0.0)


class TestHeadHooks:
    def test_head_hook_sees_all_layers(self, tiny_model, tiny_cfg, rng):
        seen = {}
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=5)
        tiny_model.forward(
            tokens,
            KVCache(tiny_cfg),
            head_hook=lambda li, norms: seen.setdefault(li, norms),
        )
        assert sorted(seen) == list(range(tiny_cfg.n_layers))
        for norms in seen.values():
            assert norms.shape == (5, tiny_cfg.n_heads)
            assert (norms >= 0).all()

    def test_all_on_mask_is_exact(self, tiny_model, tiny_cfg, rng):
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=4)
        dense = tiny_model.forward(tokens, KVCache(tiny_cfg))
        masked = tiny_model.forward(
            tokens,
            KVCache(tiny_cfg),
            head_mask_override=lambda li, x: np.ones(
                (4, tiny_cfg.n_heads), dtype=bool
            ),
        )
        assert np.allclose(dense, masked)

    def test_all_off_mask_changes_output(self, tiny_model, tiny_cfg, rng):
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=4)
        dense = tiny_model.forward(tokens, KVCache(tiny_cfg))
        masked = tiny_model.forward(
            tokens,
            KVCache(tiny_cfg),
            head_mask_override=lambda li, x: np.zeros(
                (4, tiny_cfg.n_heads), dtype=bool
            ),
        )
        assert not np.allclose(dense, masked)

    def test_high_coverage_mask_small_perturbation(self, tiny_model, tiny_cfg, rng):
        # Skipping only low-contribution heads barely changes logits —
        # the paper's attention-sparsity claim on the numerical substrate.
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=6)
        norms = {}
        dense = tiny_model.forward(
            tokens, KVCache(tiny_cfg), head_hook=lambda li, n: norms.setdefault(li, n)
        )
        masks = {li: head_mask_from_norms(n, coverage=0.97) for li, n in norms.items()}
        sparse = tiny_model.forward(
            tokens, KVCache(tiny_cfg), head_mask_override=lambda li, x: masks[li]
        )
        rel = np.abs(sparse - dense).max() / np.abs(dense).max()
        assert rel < 0.25
        # And the answer structure is preserved.
        agreement = (dense.argmax(-1) == sparse.argmax(-1)).mean()
        assert agreement > 0.6
