"""AST-based project index and call graph for the flow passes.

``repro check-flow`` needs whole-project context the per-file linter does
not: which function a call site resolves to, what dimensions a callee's
signature declares, which class an attribute chain lands on, and — for
seed provenance — every call site of a given function together with its
argument bindings.  This module builds that context once per run:

* :class:`ProjectIndex` parses every file, derives dotted module names
  (``src/repro/hardware/spec.py`` -> ``repro.hardware.spec``), and
  indexes functions (including methods, properties, and nested
  closures), classes with their annotated fields, module-level
  constants, and per-module import aliases.
* :class:`CallGraph` walks every function body (and module toplevel)
  resolving calls through import aliases, ``self``, known class
  constructors, and parameter/class types — including the blessed
  ``op_task`` / ``transfer_task`` constructor sites the engine layer
  prices tasks through.  Each resolved edge records the
  caller-qualname -> callee-qualname pair plus the :class:`ast.Call`
  node, so downstream passes can bind arguments to parameters
  (:func:`bind_args`) and chase provenance backwards through callers.

Resolution is deliberately conservative: anything ambiguous (duck-typed
receivers, ``**kwargs`` splats, higher-order dispatch) resolves to
nothing rather than to a guess, so the dimension and provenance passes
inherit a no-false-edges graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ParamInfo",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallSite",
    "ProjectIndex",
    "CallGraph",
    "bind_args",
    "annotation_name",
    "module_name_for",
]


def module_name_for(path: Path) -> str:
    """Dotted module name of a source path.

    Paths under a ``repro`` package root map to their real import path;
    anything else (test fixtures in tmp dirs) maps to its stem, which is
    enough to keep qualnames unique within a run.
    """
    parts = list(path.parts)
    name = path.stem
    if "repro" in parts:
        tail = parts[parts.index("repro") : -1] + ([] if name == "__init__" else [name])
        return ".".join(tail)
    return name


def annotation_name(node: ast.expr | None) -> str | None:
    """Trailing identifier of an annotation, unwrapped.

    ``Seconds`` -> ``"Seconds"``; ``units.Seconds`` -> ``"Seconds"``;
    ``"Seconds | None"`` / ``Optional[Seconds]`` / ``Final[Seconds]``
    all unwrap to ``"Seconds"``.  Container annotations
    (``dict[str, float]``, ``list[SimTask]``) return ``None`` — the
    analyzer does not track element dimensions.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # X | None (either side) unwraps to X; X | Y stays opaque.
        left, right = node.left, node.right
        if isinstance(right, ast.Constant) and right.value is None:
            return annotation_name(left)
        if isinstance(left, ast.Constant) and left.value is None:
            return annotation_name(right)
        return None
    if isinstance(node, ast.Subscript):
        head = annotation_name(node.value)
        if head in ("Optional", "Final", "Annotated"):
            inner = node.slice
            if head == "Annotated" and isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return annotation_name(inner)
        return None
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chain as a string, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class ParamInfo:
    """One formal parameter: name, unwrapped annotation, default node."""

    name: str
    annotation: str | None
    default: ast.expr | None
    kind: str  # "pos", "kwonly", "vararg", "kwarg"


@dataclass
class FunctionInfo:
    """One function/method/closure and its declared signature."""

    qualname: str  # "repro.hardware.spec:LinkSpec.transfer_time"
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[ParamInfo]
    returns: str | None
    is_property: bool
    path: str
    lineno: int

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.params if p.kind in ("pos", "kwonly")]


@dataclass
class ClassInfo:
    """One class: annotated fields, methods, and property dimensions."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    fields: dict[str, str] = field(default_factory=dict)  # attr -> annotation
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    properties: dict[str, str] = field(default_factory=dict)  # name -> return ann
    bases: list[str] = field(default_factory=list)

    def attribute_annotation(self, attr: str) -> str | None:
        """Declared annotation of ``obj.attr`` (field or property)."""
        if attr in self.fields:
            return self.fields[attr]
        return self.properties.get(attr)


@dataclass
class ModuleInfo:
    """One parsed module with its local name bindings."""

    name: str
    path: str
    tree: ast.Module
    source: str
    imports: dict[str, str] = field(default_factory=dict)  # alias -> qualified
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # toplevel
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    constants: dict[str, ast.expr] = field(default_factory=dict)
    constant_annotations: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: caller context + the call node."""

    caller: str | None  # qualname, or None for module toplevel
    callee: str  # qualname
    node: ast.Call
    module: str  # caller's module name


_PROPERTY_DECORATORS = {"property", "cached_property"}


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.add(name.split(".")[-1])
    return names


def _params_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ParamInfo]:
    args = node.args
    params: list[ParamInfo] = []
    positional = list(args.posonlyargs) + list(args.args)
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        params.append(
            ParamInfo(arg.arg, annotation_name(arg.annotation), default, "pos")
        )
    if args.vararg:
        params.append(
            ParamInfo(
                args.vararg.arg, annotation_name(args.vararg.annotation), None, "vararg"
            )
        )
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        params.append(
            ParamInfo(arg.arg, annotation_name(arg.annotation), default, "kwonly")
        )
    if args.kwarg:
        params.append(
            ParamInfo(
                args.kwarg.arg, annotation_name(args.kwarg.annotation), None, "kwarg"
            )
        )
    return params


class _ModuleIndexer(ast.NodeVisitor):
    """Single-module walk filling a ModuleInfo and the function table."""

    def __init__(self, info: ModuleInfo, functions: dict[str, FunctionInfo]):
        self.info = info
        self.functions = functions
        self._class_stack: list[ClassInfo] = []
        self._func_depth = 0

    # -- imports ------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports are not used in this tree
        for alias in node.names:
            self.info.imports[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )

    # -- module-level bindings ----------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._class_stack and self._func_depth == 0:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.info.constants[target.id] = node.value
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        ann = annotation_name(node.annotation)
        if isinstance(node.target, ast.Name):
            name = node.target.id
            if self._class_stack and self._func_depth == 0:
                if ann:
                    self._class_stack[-1].fields[name] = ann
            elif not self._class_stack and self._func_depth == 0:
                if node.value is not None:
                    self.info.constants[name] = node.value
                if ann:
                    self.info.constant_annotations[name] = ann
        self.generic_visit(node)

    # -- defs ---------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_depth:
            return  # classes defined inside functions: out of scope
        cls = ClassInfo(
            qualname=f"{self.info.name}:{node.name}",
            module=self.info.name,
            name=node.name,
            node=node,
            bases=[b for b in (dotted_name(base) for base in node.bases) if b],
        )
        self.info.classes[node.name] = cls
        self._class_stack.append(cls)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        decorators = _decorator_names(node)
        if self._func_depth == 0:
            qual_tail = f"{cls.name}.{node.name}" if cls else node.name
        else:
            qual_tail = f"<locals>.{node.name}@{node.lineno}"
        info = FunctionInfo(
            qualname=f"{self.info.name}:{qual_tail}",
            module=self.info.name,
            cls=cls.name if cls and self._func_depth == 0 else None,
            name=node.name,
            node=node,
            params=_params_of(node),
            returns=annotation_name(node.returns),
            is_property=bool(decorators & _PROPERTY_DECORATORS),
            path=self.info.path,
            lineno=node.lineno,
        )
        self.functions[info.qualname] = info
        if cls is not None and self._func_depth == 0:
            if info.is_property and info.returns:
                cls.properties[node.name] = info.returns
            cls.methods[node.name] = info
        elif self._func_depth == 0:
            self.info.functions[node.name] = info
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


class ProjectIndex:
    """Parsed project: modules, functions, classes, constants."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.parse_errors: list[tuple[str, int, str]] = []  # path, line, msg

    @classmethod
    def build(cls, files: list[Path]) -> "ProjectIndex":
        index = cls()
        for path in files:
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError) as exc:
                line = getattr(exc, "lineno", 1) or 1
                index.parse_errors.append((str(path), line, str(exc)))
                continue
            info = ModuleInfo(
                name=module_name_for(path), path=str(path), tree=tree, source=source
            )
            _ModuleIndexer(info, index.functions).visit(tree)
            index.modules[info.name] = info
        return index

    # -- lookups ------------------------------------------------------
    def class_named(self, name: str | None) -> ClassInfo | None:
        """Class by bare name (class names are unique in this tree)."""
        if name is None:
            return None
        for module in self.modules.values():
            if name in module.classes:
                return module.classes[name]
        return None

    def resolve_name(
        self, module: ModuleInfo, name: str
    ) -> FunctionInfo | ClassInfo | None:
        """What a bare ``Name`` refers to in ``module`` scope."""
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        qualified = module.imports.get(name)
        if qualified is None:
            return None
        return self.resolve_qualified(qualified)

    def resolve_qualified(self, qualified: str) -> FunctionInfo | ClassInfo | None:
        """Resolve ``pkg.mod.attr`` against the indexed modules."""
        if qualified in self.modules:
            return None  # a module object, not a callable
        mod_name, _, attr = qualified.rpartition(".")
        target = self.modules.get(mod_name)
        if target is None:
            return None
        if attr in target.functions:
            return target.functions[attr]
        if attr in target.classes:
            return target.classes[attr]
        return None


class _CallCollector(ast.NodeVisitor):
    """Collect resolvable call edges from one module."""

    def __init__(self, graph: "CallGraph", module: ModuleInfo):
        self.graph = graph
        self.module = module
        self._func_stack: list[FunctionInfo | None] = []
        self._class_stack: list[ClassInfo] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = self.module.classes.get(node.name)
        if cls is None:
            self.generic_visit(node)
            return
        self._class_stack.append(cls)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if len(self._func_stack) == 0:
            if self._class_stack:
                qual = f"{self.module.name}:{self._class_stack[-1].name}.{node.name}"
            else:
                qual = f"{self.module.name}:{node.name}"
        else:
            qual = f"{self.module.name}:<locals>.{node.name}@{node.lineno}"
        info = self.graph.index.functions.get(qual)
        if info is None and self._func_stack:
            # Unindexed closure: attribute its calls to the enclosing def.
            info = self._func_stack[-1]
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = self.graph.resolve_call(
            node,
            self.module,
            self._func_stack[-1] if self._func_stack else None,
            self._class_stack[-1] if self._class_stack else None,
        )
        if callee is not None:
            caller = self._func_stack[-1] if self._func_stack else None
            self.graph.add_edge(
                CallSite(
                    caller=caller.qualname if caller else None,
                    callee=callee.qualname,
                    node=node,
                    module=self.module.name,
                )
            )
        self.generic_visit(node)


class CallGraph:
    """Resolved call edges over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.edges: list[CallSite] = []
        self.callers_of: dict[str, list[CallSite]] = {}

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        graph = cls(index)
        for module in index.modules.values():
            _CallCollector(graph, module).visit(module.tree)
        return graph

    def add_edge(self, site: CallSite) -> None:
        self.edges.append(site)
        self.callers_of.setdefault(site.callee, []).append(site)

    def resolve_call(
        self,
        node: ast.Call,
        module: ModuleInfo,
        func: FunctionInfo | None,
        cls: ClassInfo | None,
    ) -> FunctionInfo | ClassInfo | None:
        """Static resolution of a call's target, or None.

        Handles: bare names (local defs + import aliases, including the
        ``op_task`` / ``transfer_task`` constructor helpers), dotted
        module attributes, ``self.method()``, ``ClassName.method()``,
        and ``param.method()`` where the parameter's annotation names an
        indexed class.
        """
        callee = node.func
        if isinstance(callee, ast.Name):
            return self.index.resolve_name(module, callee.id)
        if not isinstance(callee, ast.Attribute):
            return None
        base = callee.value
        # module alias: np.x / repro.engine.base.op_task
        chain = dotted_name(base)
        if chain is not None:
            head = chain.split(".")[0]
            if head in module.imports:
                qualified = module.imports[head] + chain[len(head) :]
                target = self.index.modules.get(qualified)
                if target is not None:
                    if callee.attr in target.functions:
                        return target.functions[callee.attr]
                    if callee.attr in target.classes:
                        return target.classes[callee.attr]
                    return None
        if isinstance(base, ast.Name):
            receiver: ClassInfo | None = None
            if base.id == "self" and cls is not None:
                receiver = cls
            elif base.id in module.classes:
                receiver = module.classes[base.id]
            elif base.id in module.imports:
                resolved = self.index.resolve_qualified(module.imports[base.id])
                if isinstance(resolved, ClassInfo):
                    receiver = resolved
            elif func is not None:
                for param in func.params:
                    if param.name == base.id:
                        receiver = self.index.class_named(param.annotation)
                        break
            if receiver is not None:
                method = receiver.methods.get(callee.attr)
                if method is not None:
                    return method
        return None


def bind_args(
    func: FunctionInfo, call: ast.Call, *, skip_self: bool = False
) -> dict[str, ast.expr]:
    """Map a call's argument expressions onto ``func``'s parameters.

    Starred args and ``**kwargs`` splats abort the affected bindings
    (conservative: unbound parameters simply go unchecked).  ``skip_self``
    drops the leading parameter for bound-method calls.
    """
    params = [p for p in func.params if p.kind == "pos"]
    if skip_self and params:
        params = params[1:]
    bound: dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            bound[params[i].name] = arg
    names = {p.name for p in func.params}
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in names:
            bound[kw.arg] = kw.value
    return bound
