"""Tests for adaptive predictor sizing."""

import numpy as np
import pytest

from repro.models.config import OPT_30B, OPT_175B
from repro.predictor.adaptive import (
    adaptive_train,
    baseline_hidden_size,
    modeled_predictor_bytes,
    modeled_predictor_params,
)
from repro.predictor.training import synthesize_training_data


class TestBaselineSize:
    def test_sparser_layers_get_smaller_baselines(self):
        dense = baseline_hidden_size(512, 2048, layer_sparsity=0.80)
        sparse = baseline_hidden_size(512, 2048, layer_sparsity=0.97)
        assert sparse < dense

    def test_bounds_respected(self):
        assert baseline_hidden_size(8, 16, 0.99) >= 4
        assert baseline_hidden_size(10_000, 100, 0.0) <= 100

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            baseline_hidden_size(8, 16, 1.0)


class TestAdaptiveTrain:
    @pytest.fixture
    def split_data(self, rng):
        x, y = synthesize_training_data(48, 96, 800, rng, target_sparsity=0.92)
        return x[:600], y[:600], x[600:], y[600:]

    def test_meets_target_or_returns_best(self, split_data, rng):
        xt, yt, xv, yv = split_data
        result = adaptive_train(
            xt, yt, xv, yv, layer_sparsity=0.92, layer_skewness=0.8, rng=rng,
            accuracy_target=0.93, max_rounds=4, epochs=12,
        )
        assert result.metrics.accuracy > 0.90
        assert result.history, "search history must be recorded"

    def test_high_skew_shrinks_from_baseline(self, split_data, rng):
        xt, yt, xv, yv = split_data
        result = adaptive_train(
            xt, yt, xv, yv, layer_sparsity=0.92, layer_skewness=0.9, rng=rng,
            accuracy_target=0.80,  # easy target -> shrinking should engage
            max_rounds=5, epochs=8,
        )
        baseline = baseline_hidden_size(48, 96, 0.92)
        assert result.hidden <= baseline

    def test_unreachable_target_returns_most_accurate(self, split_data, rng):
        xt, yt, xv, yv = split_data
        result = adaptive_train(
            xt, yt, xv, yv, layer_sparsity=0.92, layer_skewness=0.2, rng=rng,
            accuracy_target=0.9999, max_rounds=3, epochs=5,
        )
        accuracies = [acc for _, acc in result.history]
        assert result.metrics.accuracy == pytest.approx(max(accuracies))


class TestModeledSizing:
    def test_decreases_with_sparsity(self):
        sizes = [
            modeled_predictor_params(OPT_175B, sp, 0.7) for sp in (0.85, 0.90, 0.95, 0.99)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_decreases_with_skewness(self):
        low = modeled_predictor_params(OPT_175B, 0.90, 0.2)
        high = modeled_predictor_params(OPT_175B, 0.90, 0.9)
        assert high < low

    def test_stricter_target_costs_more(self):
        loose = modeled_predictor_params(OPT_175B, 0.90, 0.7, accuracy_target=0.90)
        strict = modeled_predictor_params(OPT_175B, 0.90, 0.7, accuracy_target=0.99)
        assert strict > loose

    def test_whole_model_budget_near_paper_10_percent(self):
        # Section 5.1: predictors limited to ~10% of LLM parameters.
        n = OPT_30B.n_layers
        total = modeled_predictor_bytes(
            OPT_30B, [0.90] * n, [0.75] * n, bytes_per_param=2.0
        )
        fraction = (total / 2.0) / OPT_30B.total_params
        assert 0.02 < fraction < 0.12

    def test_validation(self):
        with pytest.raises(ValueError):
            modeled_predictor_params(OPT_30B, 1.0, 0.5)
        with pytest.raises(ValueError):
            modeled_predictor_params(OPT_30B, 0.9, 1.5)
        with pytest.raises(ValueError):
            modeled_predictor_bytes(OPT_30B, [0.9], [0.5])
