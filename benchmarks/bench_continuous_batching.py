"""Continuous batching vs static batching vs FCFS under Poisson load.

Beyond-paper serving study: at equal throughput, iteration-level
(continuous) batching strictly dominates static padded batching on mean
latency, because requests join the running batch on arrival and leave at
their own last token instead of waiting for the batch's longest member.
"""

from conftest import run_once

from repro.bench.continuous_batching import ARRIVAL_RATES, run_continuous_batching


def test_continuous_batching(benchmark, record_rows):
    rows = run_once(benchmark, run_continuous_batching)
    record_rows(
        "continuous_batching",
        rows,
        "Continuous vs static batching — OPT-6.7B INT4 PC-High, Poisson load",
    )

    by_key = {(r["rate_rps"], r["scheduler"]): r for r in rows}
    dominant_rates = []
    for rate in ARRIVAL_RATES:
        static = by_key[(rate, "static-batch")]
        cont = by_key[(rate, "continuous")]
        if (
            cont["mean_latency_s"] < static["mean_latency_s"]
            and cont["tokens_per_s"] >= static["tokens_per_s"] * 0.999
        ):
            dominant_rates.append(rate)
    # The headline claim: strict dominance on mean latency at equal (or
    # better) throughput for at least one arrival rate.
    assert dominant_rates, "continuous batching never dominated static batching"

    # Token-level scheduling makes TTFT far better than whole-request
    # delivery at every rate (first token no longer waits for the last).
    for rate in ARRIVAL_RATES:
        assert (
            by_key[(rate, "continuous")]["mean_ttft_s"]
            < by_key[(rate, "static-batch")]["mean_ttft_s"]
        )

    # SLO metrics are populated and sane.
    for rate in ARRIVAL_RATES:
        cont = by_key[(rate, "continuous")]
        assert cont["goodput_rps"] >= 0.0
        assert cont["p99_tbt_ms"] > 0.0
        assert cont["utilization"] <= 1.0 + 1e-9
