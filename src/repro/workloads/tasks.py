"""Synthetic downstream tasks for the Table 2 accuracy experiment.

The paper's Table 2 evaluates COPA / PIQA / Winogrande / RTE accuracy of
original vs. sparse-predicted ("-sparse") models and finds negligible
differences.  Without trained checkpoints, absolute task accuracy is not
measurable; the *testable* core of the claim is that selectively omitting
predicted-inactive neurons barely changes model outputs.  We therefore
build four synthetic multiple-choice task families mirroring the originals'
shapes (choice counts and prompt lengths) and score them the standard way —
the model picks the candidate completion with the highest logit — comparing
the dense model against its sparse-predicted counterpart:

* **agreement**: fraction of instances where sparse and dense pick the
  same answer (dense is the reference, so its own "accuracy" is 1.0);
* **accuracy vs. dense labels**: identical to agreement but reported per
  task family like Table 2's rows.

See DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.numerical import NumericalHybridEngine
from repro.models.kvcache import KVCache
from repro.models.transformer import Transformer

__all__ = ["TaskSpec", "TaskInstance", "TASK_FAMILIES", "make_task", "score_choices", "evaluate_agreement"]


@dataclass(frozen=True)
class TaskSpec:
    """Shape of a multiple-choice task family."""

    name: str
    n_choices: int
    prompt_len: int


# Choice counts / prompt lengths loosely mirror the originals: COPA has two
# alternatives with short premises; PIQA two longer solutions; Winogrande
# binary with mid-length sentences; RTE binary entailment on pairs.
TASK_FAMILIES = (
    TaskSpec(name="copa-like", n_choices=2, prompt_len=10),
    TaskSpec(name="piqa-like", n_choices=2, prompt_len=24),
    TaskSpec(name="winogrande-like", n_choices=2, prompt_len=16),
    TaskSpec(name="rte-like", n_choices=2, prompt_len=32),
)


@dataclass(frozen=True)
class TaskInstance:
    """One multiple-choice instance: a prompt plus candidate next tokens."""

    prompt: np.ndarray  # token ids, shape (prompt_len,)
    choices: np.ndarray  # candidate token ids, shape (n_choices,)


def make_task(
    spec: TaskSpec, n_instances: int, vocab_size: int, rng: np.random.Generator
) -> list[TaskInstance]:
    """Generate instances of a task family."""
    if n_instances <= 0:
        raise ValueError("n_instances must be positive")
    instances = []
    for _ in range(n_instances):
        prompt = rng.integers(0, vocab_size, size=spec.prompt_len)
        choices = rng.choice(vocab_size, size=spec.n_choices, replace=False)
        instances.append(TaskInstance(prompt=prompt, choices=choices))
    return instances


def score_choices(logits: np.ndarray, choices: np.ndarray) -> int:
    """Pick the highest-logit candidate; ``logits`` is the last position's
    vocabulary distribution."""
    return int(np.argmax(logits[choices]))


def evaluate_agreement(
    dense: Transformer,
    sparse: NumericalHybridEngine,
    instances: list[TaskInstance],
) -> float:
    """Fraction of instances where sparse execution picks the same answer
    as dense execution (Table 2's sparse-vs-original comparison)."""
    if not instances:
        raise ValueError("instances must be non-empty")
    agree = 0
    for inst in instances:
        dense_logits = dense.forward(inst.prompt, KVCache(dense.config))[-1]
        sparse_logits = sparse.forward_logits(inst.prompt)[-1]
        if score_choices(dense_logits, inst.choices) == score_choices(
            sparse_logits, inst.choices
        ):
            agree += 1
    return agree / len(instances)
