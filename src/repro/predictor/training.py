"""Predictor training data collection and synthesis.

Two sources, matching the two substrates:

* :func:`collect_training_data` runs token sequences through the numpy
  transformer and records (normalized MLP input, activation mask) pairs for
  a chosen layer — the data the paper's DejaVu-style predictor training
  consumes.
* :func:`synthesize_training_data` fabricates a random ReLU layer with a
  controlled sparsity/skewness profile and samples (input, mask) pairs
  from it.  This is how the Figure 9 experiment (predictor size vs. layer
  sparsity) sweeps sparsity without training many full models.
"""

from __future__ import annotations

import numpy as np

from repro.models.kvcache import KVCache
from repro.models.transformer import Transformer, mlp_activation_mask
from repro.models.weights import _neuron_bias_for_probability
from repro.sparsity.powerlaw import synthesize_activation_probs

__all__ = ["collect_training_data", "synthesize_training_data"]


def collect_training_data(
    model: Transformer,
    layer: int,
    requests: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Gather (MLP input, activation mask) pairs for ``layer`` of ``model``.

    Returns:
        ``(inputs, masks)`` with shapes ``(n_tokens, d_model)`` and
        ``(n_tokens, d_ffn)``.
    """
    cfg = model.config
    if not 0 <= layer < cfg.n_layers:
        raise ValueError(f"layer must be in [0, {cfg.n_layers})")
    inputs: list[np.ndarray] = []
    masks: list[np.ndarray] = []

    layer_weights = model.weights.layers[layer]

    def override(li: int, x: np.ndarray) -> np.ndarray:
        if li == layer:
            inputs.append(x.copy())
            masks.append(mlp_activation_mask(layer_weights, x))
        # Dense MLP behaviour (the override observes, not alters).
        return model._mlp(model.weights.layers[li], x)

    for request in requests:
        request = np.asarray(request)[: cfg.max_seq_len]
        if request.size == 0:
            continue
        cache = KVCache(cfg)
        model.forward(request, cache, mlp_override=override)
    if not inputs:
        raise ValueError("no tokens collected — empty requests?")
    return np.concatenate(inputs, axis=0), np.concatenate(masks, axis=0)


def synthesize_training_data(
    d_in: int,
    n_neurons: int,
    n_samples: int,
    rng: np.random.Generator,
    target_sparsity: float = 0.90,
    hot_fraction: float = 0.26,
    hot_mass: float = 0.80,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample (input, activation-mask) pairs from a synthetic ReLU layer.

    A random FC1 matrix is drawn and per-neuron biases are set so each
    neuron's activation probability follows a power law with the requested
    mean rate ``1 - target_sparsity`` — so both the sparsity *and* the
    skewness knobs of Figure 9 are exercised.

    Returns:
        ``(inputs, masks)`` of shapes ``(n_samples, d_in)`` and
        ``(n_samples, n_neurons)``.
    """
    if not 0.0 < target_sparsity < 1.0:
        raise ValueError("target_sparsity must be in (0, 1)")
    probs = synthesize_activation_probs(
        n_neurons,
        rng,
        hot_fraction=hot_fraction,
        hot_mass=hot_mass,
        mean_activation_rate=1.0 - target_sparsity,
    )
    w = (rng.standard_normal((n_neurons, d_in)) / np.sqrt(d_in)).astype(np.float32)
    bias = _neuron_bias_for_probability(probs, input_scale=1.0).astype(np.float32)
    x = rng.standard_normal((n_samples, d_in)).astype(np.float32)
    masks = (x @ w.T + bias) > 0
    return x, masks
