"""Tests for per-device compact neuron stores (Section 5.2)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.neuron_store import DeviceSlice, PartitionedMlp
from repro.models.config import Activation, tiny_config
from repro.models.weights import init_weights


@pytest.fixture
def layer(rng):
    cfg = tiny_config(d_model=32, d_ffn=128, n_layers=1)
    return init_weights(cfg, rng).layers[0]


def dense_mlp(layer, x, activation=Activation.RELU):
    pre = x @ layer.fc1.T + layer.fc1_bias
    hidden = np.maximum(pre, 0.0)
    if activation == Activation.REGLU:
        hidden = hidden * (x @ layer.gate.T)
    return hidden @ layer.fc2.T


class TestDeviceSlice:
    def test_local_positions_map_back(self, layer, rng):
        mask = rng.random(128) < 0.5
        part = PartitionedMlp(layer, mask)
        gpu = part.slices["gpu"]
        originals = gpu.indices[:5]
        local = gpu.local_positions(originals)
        assert np.array_equal(gpu.indices[local], originals)

    def test_foreign_indices_dropped(self, layer, rng):
        mask = np.zeros(128, dtype=bool)
        mask[:64] = True
        part = PartitionedMlp(layer, mask)
        cpu_indices = part.slices["cpu"].indices
        assert part.slices["gpu"].local_positions(cpu_indices).size == 0

    def test_nbytes_accounts_weights_and_table(self, layer):
        mask = np.zeros(128, dtype=bool)
        mask[:32] = True
        part = PartitionedMlp(layer, mask)
        sizes = part.device_bytes()
        # GPU holds 32 of 128 neurons: ~1/4 of the weight bytes.
        assert sizes["gpu"] < sizes["cpu"]
        assert sizes["gpu"] > 0

    def test_shape_validation(self, layer):
        with pytest.raises(ValueError):
            DeviceSlice(
                name="bad",
                indices=np.arange(3),
                fc1=layer.fc1[:2],
                fc1_bias=layer.fc1_bias[:3],
                fc2=layer.fc2[:, :3],
            )


class TestPartitionedForward:
    def test_oracle_mask_matches_dense(self, layer, rng):
        mask = rng.random(128) < 0.4
        part = PartitionedMlp(layer, mask)
        x = rng.standard_normal((5, 32)).astype(np.float32)
        true_mask = (x @ layer.fc1.T + layer.fc1_bias) > 0
        out = part.forward(x, true_mask)
        assert np.allclose(out, dense_mlp(layer, x), atol=1e-4)

    def test_all_on_one_device(self, layer, rng):
        x = rng.standard_normal((3, 32)).astype(np.float32)
        true_mask = (x @ layer.fc1.T + layer.fc1_bias) > 0
        for gpu_frac in (np.zeros(128, dtype=bool), np.ones(128, dtype=bool)):
            part = PartitionedMlp(layer, gpu_frac)
            assert np.allclose(
                part.forward(x, true_mask), dense_mlp(layer, x), atol=1e-4
            )

    def test_1d_input(self, layer, rng):
        mask = rng.random(128) < 0.5
        part = PartitionedMlp(layer, mask)
        x = rng.standard_normal(32).astype(np.float32)
        true_mask = (x @ layer.fc1.T + layer.fc1_bias) > 0
        out = part.forward(x, true_mask)
        assert out.shape == (32,)
        assert np.allclose(out, dense_mlp(layer, x), atol=1e-4)

    def test_empty_prediction_gives_zero(self, layer, rng):
        part = PartitionedMlp(layer, rng.random(128) < 0.5)
        x = rng.standard_normal((2, 32)).astype(np.float32)
        out = part.forward(x, np.zeros((2, 128), dtype=bool))
        assert (out == 0).all()

    def test_reglu(self, rng):
        cfg = tiny_config(d_model=32, d_ffn=128, n_layers=1, activation=Activation.REGLU)
        layer = init_weights(cfg, rng).layers[0]
        part = PartitionedMlp(layer, rng.random(128) < 0.5, activation=Activation.REGLU)
        x = rng.standard_normal((4, 32)).astype(np.float32)
        true_mask = (x @ layer.fc1.T + layer.fc1_bias) > 0
        assert np.allclose(
            part.forward(x, true_mask),
            dense_mlp(layer, x, Activation.REGLU),
            atol=1e-4,
        )

    def test_reglu_requires_gate(self, layer):
        with pytest.raises(ValueError, match="gate"):
            PartitionedMlp(layer, np.zeros(128, dtype=bool), activation=Activation.REGLU)

    def test_bad_mask_rejected(self, layer):
        with pytest.raises(ValueError):
            PartitionedMlp(layer, np.zeros(100, dtype=bool))

    @given(split_seed=st.integers(0, 1000), frac=st.floats(0.0, 1.0))
    @settings(
        max_examples=25,
        deadline=None,
        # The layer fixture is read-only; reuse across examples is safe.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_split_never_changes_result(self, layer, split_seed, frac):
        # Property: the GPU/CPU split is an implementation detail — any
        # partition yields the same output for the same prediction mask.
        gen = np.random.default_rng(split_seed)
        mask = gen.random(128) < frac
        part = PartitionedMlp(layer, mask)
        x = gen.standard_normal((2, 32)).astype(np.float32)
        pred = gen.random((2, 128)) < 0.3
        reference = PartitionedMlp(layer, np.zeros(128, dtype=bool)).forward(x, pred)
        assert np.allclose(part.forward(x, pred), reference, atol=1e-4)
