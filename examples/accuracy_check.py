#!/usr/bin/env python
"""Accuracy check: does skipping predicted-inactive neurons change outputs?

The numerical counterpart of the paper's Table 2.  Builds small ReLU and
ReGLU transformers, trains activation predictors, and measures how closely
sparse-predicted execution tracks dense execution on multiple-choice tasks
— including the oracle-predictor case, which must match dense bit-exactly
(inactive ReLU neurons contribute exactly zero).

Usage::

    python examples/accuracy_check.py
"""

import numpy as np

from repro.bench.table2 import build_sparse_system
from repro.engine.numerical import NumericalHybridEngine
from repro.models import Activation, KVCache
from repro.workloads import TASK_FAMILIES, evaluate_agreement, make_task


def main() -> None:
    rng = np.random.default_rng(11)
    for activation in (Activation.RELU, Activation.REGLU):
        print(f"=== {activation.upper()} model "
              f"({'OPT/Falcon' if activation == 'relu' else 'LLaMA'}-style) ===")
        model, engine, predictors = build_sparse_system(
            activation=activation, seed=5
        )

        # Oracle predictors: exact sparse execution.
        oracle = NumericalHybridEngine(model, [None] * model.config.n_layers)
        prompt = rng.integers(0, model.config.vocab_size, size=16)
        dense = model.forward(prompt, KVCache(model.config))
        exact = oracle.forward_logits(prompt)
        print(f"  oracle-sparse max |logit diff| vs dense: "
              f"{np.abs(dense - exact).max():.2e} (float noise only)")

        # Trained predictors: per-task agreement (Table 2 analogue).
        for spec in TASK_FAMILIES:
            instances = make_task(spec, 12, model.config.vocab_size, rng)
            agreement = evaluate_agreement(model, engine, instances)
            print(f"  {spec.name:<18} agreement: {agreement:.0%}")
        print(f"  predictor miss rate: {engine.stats.miss_rate:.1%}, "
              f"neuron computations skipped: "
              f"{engine.stats.neurons_skipped / max(engine.stats.neurons_skipped + engine.stats.neurons_cpu + engine.stats.neurons_gpu, 1):.0%}")
        print()


if __name__ == "__main__":
    main()
