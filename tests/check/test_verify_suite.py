"""End-to-end tests of the opt-in ``validate=True`` hooks and verify suite.

Two properties matter: validation must *pass* on everything the simulator
actually produces (engines and the continuous server are invariant-clean),
and turning it on must not change a single simulated number — the hooks
observe, they never steer.
"""

import numpy as np
import pytest

from repro.check.verify import ITERATION_POINTS, SERVING_N_REQUESTS
from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.serving import simulate_continuous_serving
from repro.serving.arrival import Request
from repro.telemetry.tracer import Tracer


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


BUDGET = 256 * 2**20


def burst(n, input_len=16, output_len=32, gap=0.001):
    return [
        Request(request_id=i, arrival_time=gap * i, input_len=input_len, output_len=output_len)
        for i in range(n)
    ]


def report_fingerprint(report):
    return (
        report.makespan,
        report.n_iterations,
        report.peak_kv_bytes,
        tuple(report.busy_intervals),
        tuple((m.request.request_id, tuple(m.token_times)) for m in report.completed),
    )


class TestEngineValidateHook:
    @pytest.mark.parametrize(
        "ctx_len,n_tokens,batch",
        [point[1:] for point in ITERATION_POINTS],
        ids=[point[0] for point in ITERATION_POINTS],
    )
    def test_engine_schedules_are_invariant_clean(self, engine, ctx_len, n_tokens, batch):
        engine.simulate_iteration(ctx_len, n_tokens, batch=batch, validate=True)

    def test_validation_does_not_change_the_schedule(self, engine):
        plain = engine.simulate_iteration(128, 1, batch=2)
        checked = engine.simulate_iteration(128, 1, batch=2, validate=True)
        assert checked.makespan == plain.makespan
        assert {n: (t.start, t.end) for n, t in checked.tasks.items()} == {
            n: (t.start, t.end) for n, t in plain.tasks.items()
        }

    def test_simulate_iteration_at_forwards_validate(self, engine):
        faults = FaultSchedule(
            [FaultEvent(FaultKind.PCIE_DEGRADE, start=0.0, duration=10.0, magnitude=4.0)]
        )
        engine.simulate_iteration_at(1.0, faults, 128, 1, validate=True)


class TestServerValidateHook:
    def test_clean_run_passes_and_populates_ledger(self, engine):
        plain = simulate_continuous_serving(
            engine, burst(8), max_batch=4, kv_budget_bytes=BUDGET
        )
        checked = simulate_continuous_serving(
            engine, burst(8), max_batch=4, kv_budget_bytes=BUDGET, validate=True
        )
        assert report_fingerprint(checked) == report_fingerprint(plain)

    def test_ledger_only_recorded_when_validating(self, engine):
        from repro.serving import ContinuousServer

        server = ContinuousServer(
            engine, max_batch=4, kv_budget_bytes=BUDGET, validate=True
        )
        server.run(burst(6))
        assert server.last_kv_ledger, "validated run must record KV events"
        allocs = [ev for ev in server.last_kv_ledger if ev.op == "alloc"]
        frees = [ev for ev in server.last_kv_ledger if ev.op == "free"]
        assert len(allocs) == 6
        assert len(frees) == 6

        untracked = ContinuousServer(engine, max_batch=4, kv_budget_bytes=BUDGET)
        untracked.run(burst(6))
        assert untracked.last_kv_ledger == []

    def test_faulted_traced_run_validates(self, engine):
        faults = FaultSchedule(
            [
                FaultEvent(FaultKind.DEVICE_STALL, start=0.05, duration=0.02),
                FaultEvent(FaultKind.KV_SHRINK, start=0.1, duration=0.2, magnitude=0.5),
            ]
        )
        report = simulate_continuous_serving(
            engine,
            burst(8),
            max_batch=4,
            kv_budget_bytes=BUDGET,
            faults=faults,
            max_retries=2,
            tracer=Tracer(),
            validate=True,
        )
        assert report.n_iterations > 0


class TestVerifySuite:
    def test_grid_constants(self):
        kinds = [k for k, *_ in ITERATION_POINTS]
        assert kinds == ["prompt", "decode", "batched-decode"]
        assert SERVING_N_REQUESTS["quick"] < SERVING_N_REQUESTS["full"]

    def test_quick_suite_passes(self):
        from repro.check.verify import run_verification

        doc = run_verification(quick=True)
        assert doc["ok"] is True
        assert doc["n_violations"] == 0
        assert doc["n_cases"] >= 3
        statuses = {c["status"] for c in doc["cases"]}
        assert statuses <= {"ok", "skipped"}
