"""The offline LLM profiler (paper Section 6.1).

Collects per-neuron activation counts two ways, matching the two substrates:

* :func:`profile_numerical` runs real token sequences through the numpy
  transformer with an activation hook — the faithful analogue of the
  paper's monitoring kernel inserted after each block.
* :func:`profile_statistical` samples activation masks from a synthesized
  :class:`~repro.sparsity.activation.ActivationModel` — used for
  paper-scale models whose weights do not exist here.

Both produce an :class:`~repro.profiler.trace.ActivationTrace`, from which
:func:`layer_statistics` derives the sparsity/skewness summary the adaptive
predictor sizing and the placement solver consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.models.kvcache import KVCache
from repro.models.transformer import Transformer
from repro.profiler.trace import ActivationTrace
from repro.sparsity.activation import ActivationModel
from repro.sparsity.stats import skewness, sparsity

__all__ = ["LayerStats", "profile_numerical", "profile_statistical", "layer_statistics"]


@dataclass(frozen=True)
class LayerStats:
    """Summary statistics for one layer's MLP neuron population."""

    layer: int
    sparsity: float
    skewness: float
    mean_rate: float


def profile_numerical(
    model: Transformer,
    requests: Iterable[np.ndarray],
    record_attention: bool = False,
    head_coverage: float = 0.95,
) -> ActivationTrace:
    """Profile real MLP activations of ``model`` over token sequences.

    Each request is run through a fresh KV cache (requests are independent
    documents); the activation hook counts which ReLU gates open per token.

    Args:
        model: The numpy transformer to profile.
        requests: Token-id sequences.
        record_attention: Also count attention-head activity, defining a
            head as active when it belongs to the smallest set covering
            ``head_coverage`` of the token's head-output energy (paper
            Section 2.1's attention sparsity).
        head_coverage: Energy coverage for the head-activity definition.
    """
    from repro.models.transformer import head_mask_from_norms

    cfg = model.config
    trace = ActivationTrace.empty(
        cfg.n_layers, cfg.d_ffn, cfg.n_heads if record_attention else 0
    )

    def head_hook(layer: int, norms: np.ndarray) -> None:
        trace.record_attn(layer, head_mask_from_norms(norms, head_coverage))

    saw_requests = False
    for request in requests:
        saw_requests = True
        request = np.asarray(request)
        if request.size == 0:
            continue
        if request.size > cfg.max_seq_len:
            request = request[: cfg.max_seq_len]
        cache = KVCache(cfg)
        model.forward(
            request,
            cache,
            activation_hook=trace.record_mlp,
            head_hook=head_hook if record_attention else None,
        )
        trace.advance_tokens(int(request.size))
    if not saw_requests:
        raise ValueError("requests iterable was empty")
    return trace


def profile_statistical(
    activation_model: ActivationModel, n_tokens: int, batch_tokens: int = 256
) -> ActivationTrace:
    """Profile a synthesized activation model over ``n_tokens`` samples.

    Samples per-token Bernoulli masks layer by layer; ``batch_tokens``
    bounds the peak memory of mask sampling.
    """
    if n_tokens <= 0:
        raise ValueError("n_tokens must be positive")
    n_layers = activation_model.n_layers
    mlp_neurons = activation_model.mlp_profiles[0].n_neurons
    attn_neurons = (
        activation_model.attn_profiles[0].n_neurons
        if activation_model.attn_profiles
        else 0
    )
    trace = ActivationTrace.empty(n_layers, mlp_neurons, attn_neurons)
    remaining = n_tokens
    while remaining > 0:
        chunk = min(batch_tokens, remaining)
        for layer in range(n_layers):
            masks = np.stack(
                [activation_model.sample_mlp_mask(layer) for _ in range(chunk)]
            )
            trace.record_mlp(layer, masks)
            if attn_neurons:
                attn_masks = np.stack(
                    [activation_model.sample_attn_mask(layer) for _ in range(chunk)]
                )
                trace.record_attn(layer, attn_masks)
        trace.advance_tokens(chunk)
        remaining -= chunk
    return trace


def layer_statistics(trace: ActivationTrace) -> list[LayerStats]:
    """Per-layer sparsity/skewness summary from a trace."""
    stats: list[LayerStats] = []
    for layer in range(trace.n_layers):
        rates = trace.mlp_rates(layer)
        stats.append(
            LayerStats(
                layer=layer,
                sparsity=sparsity(rates),
                skewness=skewness(rates),
                mean_rate=float(rates.mean()),
            )
        )
    return stats
