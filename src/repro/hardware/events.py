"""Discrete-event scheduling of operator DAGs onto device timelines.

PowerInfer's online engine (paper Section 5.3) builds a DAG of inference
operators, tags each with its prerequisite operators, and lets per-device
executors pull ready operators from a global queue.  This module provides the
simulation equivalent: :class:`Resource` models a serially-occupied device
(GPU stream, CPU thread pool, PCIe link) and :class:`EventSimulator` performs
event-driven list scheduling of a task DAG over those resources.

Scheduling discipline: at every point in virtual time, each resource runs at
most one task; a task becomes *ready* when all its dependencies have
finished; ready tasks are started on their resource in (priority, insertion
order), which makes the simulation fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.units import Ratio, Seconds

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.hardware.costmodel import TaskCost

__all__ = ["Resource", "SimTask", "TaskResult", "ScheduleResult", "EventSimulator"]


@dataclass
class Resource:
    """A serially occupied execution resource with a busy-time counter."""

    name: str
    available_at: Seconds = 0.0
    busy_time: Seconds = 0.0

    def reserve(self, earliest: Seconds, duration: Seconds) -> tuple[Seconds, Seconds]:
        """Occupy the resource for ``duration`` starting no earlier than
        ``earliest``; returns the (start, end) interval chosen."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(earliest, self.available_at)
        end = start + duration
        self.available_at = end
        self.busy_time += duration
        return start, end

    def reset(self) -> None:
        self.available_at = 0.0
        self.busy_time = 0.0


@dataclass
class SimTask:
    """One node of the simulated operator DAG.

    Attributes:
        name: Unique task identifier.
        resource: Name of the resource that executes the task.
        duration: Execution time in seconds.
        deps: Names of tasks that must finish before this one starts.
        priority: Lower values are scheduled first among simultaneously
            ready tasks on the same resource.
        tag: Free-form label used for per-category time accounting
            (e.g. ``"transfer"``, ``"mlp"``, ``"predictor"``).
        cost: Optional structured cost terms behind ``duration``
            (:class:`~repro.hardware.costmodel.TaskCost`) — attached by
            engines so attribution can decompose and re-price the task.
    """

    name: str
    resource: str
    duration: Seconds
    deps: tuple[str, ...] = ()
    priority: int = 0
    tag: str = ""
    cost: "TaskCost | None" = None


@dataclass(frozen=True)
class TaskResult:
    """Scheduled interval for one task.

    ``deps`` records the task's (deduplicated) dependency edges so a
    realized :class:`ScheduleResult` is self-contained for validation —
    :func:`repro.check.schedule.validate_schedule` can verify dependency
    order without the original :class:`SimTask` list.
    """

    name: str
    resource: str
    start: Seconds
    end: Seconds
    tag: str = ""
    cost: "TaskCost | None" = None
    deps: tuple[str, ...] = ()

    @property
    def duration(self) -> Seconds:
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Outcome of simulating a DAG: per-task intervals plus summaries."""

    tasks: dict[str, TaskResult]
    makespan: Seconds
    busy_time: dict[str, Seconds]
    tag_time: dict[str, Seconds] = field(default_factory=dict)

    def resource_utilization(self, resource: str) -> Ratio:
        """Fraction of the makespan the resource was busy."""
        if self.makespan == 0:
            return 0.0
        return self.busy_time.get(resource, 0.0) / self.makespan

    def time_by_tag(self) -> dict[str, Seconds]:
        """Total busy seconds per task tag (for breakdown figures)."""
        return dict(self.tag_time)

    def to_chrome_trace(self) -> list[dict]:
        """Trace-event JSON objects for chrome://tracing / Perfetto.

        One complete ("X") event per task; resources map to trace threads.
        Times are microseconds, as the trace-event format expects.
        """
        tids = {name: i for i, name in enumerate(sorted(self.busy_time))}
        events: list[dict] = []
        for name, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for task in self.tasks.values():
            events.append(
                {
                    "name": task.name,
                    "cat": task.tag or "op",
                    "ph": "X",
                    "pid": 0,
                    "tid": tids[task.resource],
                    "ts": task.start * 1e6,
                    "dur": task.duration * 1e6,
                }
            )
        return events

    def save_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` output as a JSON file."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": self.to_chrome_trace()}, fh)


class EventSimulator:
    """Event-driven list scheduler for :class:`SimTask` DAGs."""

    def __init__(self, resources: list[str] | None = None) -> None:
        self._resources: dict[str, Resource] = {}
        for name in resources or []:
            self.add_resource(name)

    def add_resource(self, name: str) -> Resource:
        """Register a resource; returns the resource object."""
        if name in self._resources:
            raise ValueError(f"resource {name!r} already registered")
        res = Resource(name=name)
        self._resources[name] = res
        return res

    def resource(self, name: str) -> Resource:
        return self._resources[name]

    def reset(self) -> None:
        """Clear all resource timelines (keeps registrations)."""
        for res in self._resources.values():
            res.reset()

    def run(self, tasks: list[SimTask]) -> ScheduleResult:
        """Schedule the task DAG; returns per-task intervals and makespan.

        Raises:
            ValueError: On duplicate task names, unknown resources, missing
                dependencies, or dependency cycles.
        """
        by_name: dict[str, SimTask] = {}
        for task in tasks:
            if task.name in by_name:
                raise ValueError(f"duplicate task name: {task.name!r}")
            if task.resource not in self._resources:
                raise ValueError(f"unknown resource: {task.resource!r}")
            by_name[task.name] = task
        for task in tasks:
            for dep in task.deps:
                if dep not in by_name:
                    raise ValueError(f"task {task.name!r} depends on unknown task {dep!r}")

        # dict.fromkeys (not set) deduplicates while keeping declaration
        # order, so the dependents lists — and with them heap tiebreaks —
        # are stable run to run.
        unique_deps = {t.name: tuple(dict.fromkeys(t.deps)) for t in tasks}
        indegree = {name: len(deps) for name, deps in unique_deps.items()}
        dependents: dict[str, list[str]] = {t.name: [] for t in tasks}
        for task in tasks:
            for dep in unique_deps[task.name]:
                dependents[dep].append(task.name)

        counter = itertools.count()
        # Ready heap entries: (earliest start, priority, tiebreak, name).
        ready: list[tuple[float, int, int, str]] = []
        dep_finish: dict[str, float] = {t.name: 0.0 for t in tasks}
        for task in tasks:
            if indegree[task.name] == 0:
                heapq.heappush(ready, (0.0, task.priority, next(counter), task.name))

        results: dict[str, TaskResult] = {}
        tag_time: dict[str, float] = {}
        completed = 0
        while ready:
            earliest, _, _, name = heapq.heappop(ready)
            task = by_name[name]
            res = self._resources[task.resource]
            start, end = res.reserve(earliest, task.duration)
            results[name] = TaskResult(
                name=name,
                resource=task.resource,
                start=start,
                end=end,
                tag=task.tag,
                cost=task.cost,
                deps=unique_deps[name],
            )
            if task.tag:
                tag_time[task.tag] = tag_time.get(task.tag, 0.0) + task.duration
            completed += 1
            for child in dependents[name]:
                dep_finish[child] = max(dep_finish[child], end)
                indegree[child] -= 1
                if indegree[child] == 0:
                    child_task = by_name[child]
                    heapq.heappush(
                        ready,
                        (dep_finish[child], child_task.priority, next(counter), child),
                    )

        if completed != len(tasks):
            unresolved = sorted(set(by_name) - set(results))
            raise ValueError(f"dependency cycle involving tasks: {unresolved[:5]}")

        makespan = max((r.end for r in results.values()), default=0.0)
        busy = {name: res.busy_time for name, res in self._resources.items()}
        return ScheduleResult(
            tasks=results, makespan=makespan, busy_time=busy, tag_time=tag_time
        )
