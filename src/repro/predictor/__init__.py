"""Adaptive activation predictors: numpy MLPs + iterative sizing."""

from repro.predictor.adaptive import (
    AdaptiveSizingResult,
    adaptive_train,
    baseline_hidden_size,
    modeled_predictor_bytes,
    modeled_predictor_params,
)
from repro.predictor.io import load_predictors, save_predictors
from repro.predictor.mlp import MlpPredictor, PredictorMetrics
from repro.predictor.training import collect_training_data, synthesize_training_data

__all__ = [
    "AdaptiveSizingResult",
    "MlpPredictor",
    "PredictorMetrics",
    "adaptive_train",
    "baseline_hidden_size",
    "collect_training_data",
    "load_predictors",
    "save_predictors",
    "modeled_predictor_bytes",
    "modeled_predictor_params",
    "synthesize_training_data",
]
