#!/usr/bin/env python
"""Simulated multi-turn chat serving on a low-end PC (the paper's PC-Low).

Deploys an INT4-quantized OPT-13B on the RTX 2080Ti machine — the "local
LLM on a gaming PC" scenario that motivates the paper — and serves a
multi-turn conversation sampled from the ChatGPT-prompts workload,
reporting per-turn latency and generation speed for PowerInfer vs
llama.cpp.

Usage::

    python examples/chat_session.py
"""

import numpy as np

from repro import INT4, OPT_13B, PC_LOW, PowerInfer
from repro.bench.runner import make_engine
from repro.workloads import CHATGPT_PROMPTS


def main() -> None:
    rng = np.random.default_rng(3)
    print(f"Deploying {OPT_13B.name} (INT4, "
          f"{OPT_13B.weight_bytes(INT4) / 2**30:.1f} GiB) on {PC_LOW.name} "
          f"({PC_LOW.gpu.name}, {PC_LOW.gpu.memory_capacity / 2**30:.0f} GiB)...")
    system = PowerInfer.deploy(OPT_13B, PC_LOW, dtype=INT4)
    llama = make_engine("llama.cpp", OPT_13B.name, PC_LOW.name, "int4")

    n_turns = 5
    # Context accumulates across turns: prior turns become part of the
    # prompt the next turn must process.
    context = 0
    output_lens = (32, 64, 128, 64, 96)
    prompt_lens = CHATGPT_PROMPTS.sample_input_lengths(n_turns, rng)

    print(f"\n{'turn':>4} | {'prompt':>6} | {'reply':>5} | "
          f"{'powerinfer':>10} | {'llama.cpp':>9} | {'speedup':>7}")
    print("-" * 58)
    total_pi = total_lc = 0.0
    for turn in range(n_turns):
        input_len = int(prompt_lens[turn]) + context
        output_len = output_lens[turn]
        pi = system.generate(input_len=input_len, output_len=output_len)
        lc = llama.simulate_request(input_len, output_len)
        total_pi += pi.total_time
        total_lc += lc.total_time
        print(f"{turn + 1:>4} | {input_len:>6} | {output_len:>5} | "
              f"{pi.total_time:>8.2f} s | {lc.total_time:>7.2f} s | "
              f"{lc.total_time / pi.total_time:>6.2f}x")
        context = input_len + output_len

    print("-" * 58)
    print(f"Conversation total: PowerInfer {total_pi:.1f} s vs "
          f"llama.cpp {total_lc:.1f} s ({total_lc / total_pi:.2f}x faster)")
    print(f"GPU serves {system.gpu_load_share():.0%} of activated-neuron "
          f"computation on this machine")


if __name__ == "__main__":
    main()
