"""Orca-style continuous batching over a performance engine.

The static simulators (:mod:`repro.serving.simulator`,
:mod:`repro.serving.batched`) treat a request as one opaque service time, so
a batch is frozen at dispatch and every member finishes together.  This
module schedules at *token* granularity instead: the server advances one
model iteration at a time via :meth:`PerfEngine.simulate_iteration`,
requests join the running batch the moment a slot and KV memory are
available, and leave the instant their last token is emitted — the
iteration-level scheduling loop of Orca/vLLM-class serving systems.

Three pieces cooperate:

* **Admission control** — each admitted request reserves its worst-case KV
  footprint (prompt + full response) in a :class:`MemoryPool` sized by the
  GPU KV budget.  Requests queue FCFS when the pool is full
  (head-of-line blocking preserves arrival order) and the reservation is
  released on completion, so the budget is never exceeded mid-flight.
* **Scheduler policy** (:mod:`repro.serving.policies`) — decides, per
  iteration, which members prefill (and how many prompt tokens) and which
  decode.
* **Iteration cost cache** — iteration latency is deterministic in
  ``(ctx_len, n_tokens, batch)``; context lengths are bucketed so streams
  of thousands of requests hit a few hundred engine simulations.

Timing convention: completing the prompt emits the request's first output
token (the prefill step produces logits for token one), so TTFT is the end
of the iteration that finishes the prompt, and ``output_len - 1`` decode
steps follow.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.engine.base import PerfEngine
from repro.hardware.memory import MemoryPool, OutOfMemoryError
from repro.serving.arrival import Request
from repro.serving.metrics import ContinuousReport, RequestMetrics
from repro.serving.policies import SchedulerPolicy, make_policy

__all__ = [
    "RequestState",
    "IterationCostCache",
    "ContinuousServer",
    "simulate_continuous_serving",
]


@dataclass
class RequestState:
    """Progress of one admitted request through prefill and decode."""

    request: Request
    admit_time: float
    kv_bytes: float
    prefilled: int = 0
    emitted: int = 0
    token_times: list[float] = field(default_factory=list)

    @property
    def remaining_prompt(self) -> int:
        return self.request.input_len - self.prefilled

    @property
    def is_prefilling(self) -> bool:
        return self.remaining_prompt > 0

    @property
    def is_decoding(self) -> bool:
        return not self.is_prefilling and self.emitted < self.request.output_len

    @property
    def done(self) -> bool:
        return self.emitted >= self.request.output_len

    @property
    def context(self) -> int:
        """Tokens currently in this request's KV cache."""
        return self.prefilled + self.emitted


class IterationCostCache:
    """Memoized iteration latencies with context-length bucketing.

    Iteration cost varies slowly with context (only the KV terms are
    ctx-dependent), so contexts are rounded to the nearest multiple of
    ``ctx_bucket`` before keying the engine simulation.  This keeps the
    number of distinct simulations bounded for long streams.
    """

    def __init__(self, engine: PerfEngine, ctx_bucket: int = 32) -> None:
        if ctx_bucket < 1:
            raise ValueError("ctx_bucket must be >= 1")
        self.engine = engine
        self.ctx_bucket = ctx_bucket
        self._cache: dict[tuple[int, int, int], float] = {}

    def _bucket(self, ctx_len: int) -> int:
        return self.ctx_bucket * round(ctx_len / self.ctx_bucket)

    def cost(self, ctx_len: int, n_tokens: int, batch: int) -> float:
        """Latency of one iteration at ``(ctx_len, n_tokens, batch)``."""
        key = (self._bucket(ctx_len), n_tokens, batch)
        if key not in self._cache:
            self._cache[key] = self.engine.simulate_iteration(*key).makespan
        return self._cache[key]

    def __len__(self) -> int:
        return len(self._cache)


class ContinuousServer:
    """Event-driven continuous-batching server.

    Attributes:
        engine: Performance engine pricing each iteration.
        policy: Scheduler policy shaping iterations (name or instance).
        max_batch: Maximum concurrently running requests.
        kv_budget_bytes: KV-cache memory budget for admission control;
            defaults to the engine's free GPU memory after plan-resident
            weights (:meth:`PerfEngine.kv_budget_bytes`).
        ctx_bucket: Context-length bucket for the iteration cost cache.
    """

    def __init__(
        self,
        engine: PerfEngine,
        policy: SchedulerPolicy | str = "fcfs",
        max_batch: int = 8,
        kv_budget_bytes: float | None = None,
        ctx_bucket: int = 32,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.max_batch = max_batch
        budget = kv_budget_bytes if kv_budget_bytes is not None else engine.kv_budget_bytes()
        if budget <= 0:
            raise ValueError(
                "kv_budget_bytes must be positive (the plan leaves no GPU "
                "memory for KV; pass an explicit budget)"
            )
        self.kv_budget_bytes = budget
        self.costs = IterationCostCache(engine, ctx_bucket)

    # ---- admission -----------------------------------------------------------

    def _admit(
        self,
        waiting: deque[Request],
        running: list[RequestState],
        pool: MemoryPool,
        now: float,
    ) -> None:
        """FCFS admission under batch slots and the KV budget.

        Head-of-line blocking: if the oldest waiting request does not fit,
        nothing behind it is admitted (preserves arrival order, the
        "queue-on-full" discipline).
        """
        while waiting and len(running) < self.max_batch:
            request = waiting[0]
            kv_bytes = self.engine.request_kv_bytes(
                request.input_len, request.output_len
            )
            if pool.try_allocate(f"req-{request.request_id}", kv_bytes) is None:
                if not running:
                    # Empty server and it still does not fit: it never will.
                    raise OutOfMemoryError(
                        f"request {request.request_id} needs "
                        f"{kv_bytes / 2**20:.1f} MiB of KV cache but the "
                        f"budget is {pool.usable_capacity / 2**20:.1f} MiB"
                    )
                return
            waiting.popleft()
            running.append(
                RequestState(request=request, admit_time=now, kv_bytes=kv_bytes)
            )

    # ---- main loop -----------------------------------------------------------

    def run(self, requests: list[Request]) -> ContinuousReport:
        """Serve ``requests``; returns token-level metrics."""
        pending = sorted(requests, key=lambda r: r.arrival_time)
        waiting: deque[Request] = deque()
        running: list[RequestState] = []
        pool = MemoryPool(name="kv-cache", capacity=self.kv_budget_bytes)
        report = ContinuousReport(kv_budget_bytes=pool.usable_capacity)

        now = 0.0
        next_arrival = 0
        while next_arrival < len(pending) or waiting or running:
            while (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_time <= now
            ):
                waiting.append(pending[next_arrival])
                next_arrival += 1
            if not running and not waiting:
                now = pending[next_arrival].arrival_time
                continue

            self._admit(waiting, running, pool, now)
            report.peak_kv_bytes = max(report.peak_kv_bytes, pool.used)

            plan = self.policy.plan_iteration(running)
            if plan.is_empty:
                raise RuntimeError(
                    f"policy {self.policy.name!r} stalled a non-empty batch"
                )

            cost = 0.0
            for state, chunk in plan.prefill:
                cost += self.costs.cost(state.context, chunk, 1)
            if plan.decode:
                ctx = max(state.context for state in plan.decode)
                cost += self.costs.cost(ctx, 1, len(plan.decode))
            end = now + cost
            report.busy_intervals.append((now, end))
            report.n_iterations += 1

            for state, chunk in plan.prefill:
                state.prefilled += chunk
                if not state.is_prefilling:
                    # Prompt done: the prefill step yields the first token.
                    state.emitted += 1
                    state.token_times.append(end)
            for state in plan.decode:
                state.emitted += 1
                state.token_times.append(end)

            still_running: list[RequestState] = []
            for state in running:
                if state.done:
                    pool.release(f"req-{state.request.request_id}")
                    report.completed.append(
                        RequestMetrics(
                            request=state.request,
                            admit_time=state.admit_time,
                            token_times=tuple(state.token_times),
                        )
                    )
                else:
                    still_running.append(state)
            running = still_running
            now = end

        report.completed.sort(key=lambda m: m.request.request_id)
        return report


def simulate_continuous_serving(
    engine: PerfEngine,
    requests: list[Request],
    policy: SchedulerPolicy | str = "fcfs",
    max_batch: int = 8,
    kv_budget_bytes: float | None = None,
    max_prefill_tokens: int = 64,
    ctx_bucket: int = 32,
) -> ContinuousReport:
    """Serve ``requests`` with continuous batching; returns the report.

    Convenience wrapper over :class:`ContinuousServer`.  ``policy`` is a
    preset name (``"fcfs"``, ``"prefill-first"``, ``"chunked"``) or a
    :class:`SchedulerPolicy` instance; ``max_prefill_tokens`` only applies
    to the chunked policy.
    """
    if isinstance(policy, str):
        kwargs = {"max_prefill_tokens": max_prefill_tokens} if policy == "chunked" else {}
        policy = make_policy(policy, **kwargs)
    server = ContinuousServer(
        engine,
        policy=policy,
        max_batch=max_batch,
        kv_budget_bytes=kv_budget_bytes,
        ctx_bucket=ctx_bucket,
    )
    return server.run(requests)
