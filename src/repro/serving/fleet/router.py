"""The fleet router: health checks, failover, hedging, brownout, disagg.

:class:`FleetRouter` fronts N :class:`~repro.serving.fleet.replica
.Replica` instances and drives their external-mode sessions on one
simulated clock with a conservative discrete-event loop:

* a global event heap holds request arrivals, heartbeat health
  transitions, scheduled re-dispatches, and every lifecycle event the
  replica sessions emit (admits, tokens, completions, failures);
* the router pops the next global event only when no session can act
  earlier; otherwise it steps the earliest-acting session (with its
  ``time_cap`` bound to the next event so a session never advances past
  an arrival it has not been handed yet).

Sessions book iterations atomically, so every event a step produces
carries a timestamp at or after the step's start — the loop processes
the fleet in global time order without ever rolling a clock back.

Resilience mechanisms (all deterministic, all on the simulated clock):

* **Health checking** — heartbeats on a fixed grid; a replica is marked
  down at the first beat where the silence exceeds the detection window,
  and up again at the first beat after the crash ends.  Crashes shorter
  than the detection window are never noticed (and never drained).
* **Failover** — marking a replica down drains its undelivered requests
  and re-dispatches each to a surviving replica with bounded exponential
  backoff (+ optional seeded jitter).  In-progress KV is lost at the
  crash (the replica's own stall machinery freed it); the request
  replays *from its last completed token*: the replacement segment
  re-prefills prompt + delivered tokens and generates only the rest, so
  the work and KV are re-priced honestly.
* **Hedged dispatch** — deadline-critical requests (deadline at or under
  the hedge threshold) are dispatched to two replicas; the first token
  wins and the loser is cancelled (its KV reservation released).
* **Brownout** — while any replica is detected down, arrivals below the
  priority floor are shed at the router, protecting the SLO of the
  higher classes on the surviving capacity.
* **Prefill→decode disaggregation** — prefill replicas stream the built
  KV to decode replicas over a modeled interconnect; transfers are
  priced by :func:`repro.engine.base.transfer_task` against the (possibly
  ``link-degrade``-slowed) link, serialized on it, and recorded as a
  schedule the validator checks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.engine.base import transfer_task
from repro.hardware.events import ScheduleResult, TaskResult
from repro.hardware.spec import GB, LinkSpec
from repro.serving.arrival import Request
from repro.serving.continuous import retry_delay
from repro.serving.fleet.policies import RouterPolicy, make_router_policy
from repro.serving.fleet.replica import Replica
from repro.serving.fleet.report import FleetResult, ReplicaSummary
from repro.serving.metrics import ContinuousReport, RequestMetrics
from repro.units import Ratio, Seconds

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.telemetry.fleet import TraceContext
    from repro.telemetry.tracer import Tracer

__all__ = ["FleetConfig", "FleetRouter", "detect_windows"]


def _default_interconnect() -> LinkSpec:
    # A datacenter-ish 25 GB/s link: far faster than token emission but
    # slow enough that multi-MB KV transfers are visible in the timeline.
    return LinkSpec(name="fleet-net", bandwidth=25 * GB, latency=25e-6)


@dataclass
class FleetConfig:
    """Router behaviour knobs (all simulated-time, all deterministic).

    Attributes:
        policy: Dispatch policy name (see
            :data:`~repro.serving.fleet.policies.ROUTER_POLICIES`).
        heartbeat_s: Heartbeat grid spacing.
        detection_window_s: Silence tolerated before a replica is marked
            down (a crash shorter than roughly this goes unnoticed).
        failover: Drain + re-dispatch detected-down replicas and route
            new work around them.  ``False`` disables the health
            *reaction* entirely — the router keeps dispatching to dead
            replicas and strands their queued work on the crashed
            replica's own local retries — the ablation the chaos
            benchmark contrasts against.  (Detection still runs either
            way, for availability accounting.)
        max_redispatch: Router-level re-dispatch budget per request
            (beyond it the request is failed).
        retry_backoff_s: Base of the router's exponential re-dispatch
            backoff (doubles per attempt).
        backoff_cap_s: Upper bound on the deterministic backoff part.
        retry_jitter: Jitter fraction on the backoff (see
            :func:`repro.serving.continuous.retry_delay`); requires
            ``seed``.
        seed: Seed of the router's jitter stream.
        hedge: Duplicate deadline-critical dispatches onto two replicas.
        hedge_deadline_s: Requests with a deadline at or under this are
            hedge-eligible (required when ``hedge`` is on).
        brownout: Shed low-priority arrivals while capacity is degraded.
        brownout_min_priority: Arrivals with ``priority`` strictly below
            this are shed during brownout.
        disaggregate: Split requests into a prefill stage and a decode
            stage on different replicas with a modeled KV transfer.
        interconnect: The fleet KV-transfer link.
    """

    policy: str = "round-robin"
    heartbeat_s: Seconds = 0.25
    detection_window_s: Seconds = 0.75
    failover: bool = True
    max_redispatch: int = 2
    retry_backoff_s: Seconds = 0.05
    backoff_cap_s: Seconds | None = 2.0
    retry_jitter: Ratio = 0.0
    seed: int | None = None
    hedge: bool = False
    hedge_deadline_s: Seconds | None = None
    brownout: bool = False
    brownout_min_priority: int = 1
    disaggregate: bool = False
    interconnect: LinkSpec = field(default_factory=_default_interconnect)

    def __post_init__(self) -> None:
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if self.detection_window_s < 0:
            raise ValueError("detection_window_s must be non-negative")
        if self.max_redispatch < 0:
            raise ValueError("max_redispatch must be non-negative")
        if self.retry_backoff_s <= 0:
            raise ValueError("retry_backoff_s must be positive")
        if self.backoff_cap_s is not None and self.backoff_cap_s <= 0:
            raise ValueError("backoff_cap_s must be positive (or None)")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be non-negative")
        if self.retry_jitter > 0 and self.seed is None:
            raise ValueError("retry_jitter > 0 requires a seed (determinism)")
        if self.hedge and self.hedge_deadline_s is None:
            raise ValueError("hedge requires hedge_deadline_s")
        if self.hedge and self.disaggregate:
            raise ValueError("hedge and disaggregate are mutually exclusive")
        if self.brownout_min_priority < 0:
            raise ValueError("brownout_min_priority must be non-negative")


def detect_windows(
    crash_windows: tuple[tuple[Seconds, Seconds], ...],
    heartbeat_s: Seconds,
    detection_window_s: Seconds,
) -> list[tuple[Seconds, Seconds]]:
    """Heartbeat-detected ``(down_at, up_at)`` windows for crash windows.

    Beats live on the ``k * heartbeat_s`` grid; a beat inside a crash
    window is missed.  Detection fires at the first missed beat whose
    silence since the last answered beat reaches the detection window;
    recovery is seen at the first beat at or after the crash end.  A
    crash no beat-silence ever exceeds the window for goes undetected
    and produces no entry.
    """
    hb = heartbeat_s
    out: list[tuple[float, float]] = []
    for c0, c1 in crash_windows:
        k = math.ceil(c0 / hb - 1e-12)
        last_alive = (k - 1) * hb
        detected = None
        while k * hb < c1:
            if k * hb - last_alive >= detection_window_s and k * hb >= c0:
                detected = k * hb
                break
            k += 1
        if detected is None:
            continue
        up = math.ceil(c1 / hb - 1e-12) * hb
        out.append((detected, up))
    return out


class _Track:
    """Router-side lifecycle state of one original request."""

    __slots__ = (
        "orig",
        "stage",
        "active",
        "delivered",
        "admit_time",
        "segments",
        "redispatches",
        "hedged",
        "done",
        "disposition",
    )

    def __init__(self, orig: Request) -> None:
        self.orig = orig
        self.stage = "unified"  # unified | prefill | transfer | decode
        self.active: set[int] = set()
        self.delivered: list[float] = []
        self.admit_time: Seconds | None = None
        self.segments = 0
        self.redispatches = 0
        self.hedged = False
        self.done = False
        self.disposition: str | None = None


# Event priorities: recoveries before failures before everything else at
# equal timestamps, so capacity changes are visible to same-instant work.
_PRIO = {"up": 0, "down": 1}


class FleetRouter:
    """Routes a request stream over a fleet of replicas; see module docs."""

    def __init__(
        self,
        replicas: list[Replica],
        config: FleetConfig | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        names = [r.name for r in replicas]
        if len(set(names)) != len(names):
            raise ValueError(f"replica names must be unique, got {names}")
        self.config = config if config is not None else FleetConfig()
        if self.config.disaggregate:
            if not any(r.serves_prefill() for r in replicas):
                raise ValueError("disaggregated fleet needs a prefill-capable replica")
            if not any(r.serves_decode() for r in replicas):
                raise ValueError("disaggregated fleet needs a decode-capable replica")
        else:
            bad = [r.name for r in replicas if r.role != "both"]
            if bad:
                raise ValueError(
                    f"replicas {bad} have split roles but disaggregate is off"
                )
        self.replicas = replicas
        self.policy: RouterPolicy = make_router_policy(self.config.policy)
        # A FleetTracer turns on *deep* tracing: router events land on its
        # router lane, and every replica without its own tracer gets a
        # per-replica lane, so the whole fleet merges into one trace on
        # one clock.  A plain Tracer keeps the PR-7 router-only behaviour.
        # (Imported lazily: repro.serving <-> repro.telemetry would cycle
        # at module import time.)
        from repro.telemetry.fleet import FleetTracer, record_fleet_fault_schedule

        self._ft = tracer if isinstance(tracer, FleetTracer) else None
        if self._ft is not None:
            self.tracer = self._ft.router
            for rep in replicas:
                if rep.server.tracer is None:
                    rep.attach_tracer(self._ft.replica(rep.name))
        else:
            self.tracer = tracer
        self._tracing = self.tracer is not None and self.tracer.enabled
        if self._tracing:
            # Fleet-kind fault windows (crash / recover / link-degrade)
            # never reach the sessions — machine_view() translates or
            # drops them — so record them on the router's trace.
            for rep in replicas:
                if rep.faults is not None:
                    record_fleet_fault_schedule(
                        self.tracer, rep.faults, replica=rep.name
                    )
        self._rng = (
            np.random.default_rng(self.config.seed)
            if self.config.retry_jitter > 0
            else None
        )
        # Heartbeat-detected windows, precomputed: crash schedules are
        # static, so detection is too.
        self._detected: list[list[tuple[float, float]]] = [
            detect_windows(
                r.crash_windows(), self.config.heartbeat_s, self.config.detection_window_s
            )
            for r in replicas
        ]

    # ---- run ----------------------------------------------------------------

    def run(self, requests: list[Request]) -> FleetResult:
        """Serve ``requests`` across the fleet; returns the merged result."""
        cfg = self.config
        reqs = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        self._tracks = {r.request_id: _Track(r) for r in reqs}
        if len(self._tracks) != len(reqs):
            raise ValueError("request ids must be unique across the stream")
        self._heap: list[tuple] = []
        self._seq = 0
        self._t_hi = 0.0
        self._completed: list[RequestMetrics] = []
        self._timed_out: list[Request] = []
        self._shed: list[Request] = []
        self._failed: list[Request] = []
        self._transfers: dict[str, TaskResult] = {}
        self._link_busy = 0.0
        self._hedged_ids: set[int] = set()
        self.counters = {
            "dispatches": 0,
            "redispatches": 0,
            "failovers": 0,
            "detections": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "hedge_cancels": 0,
            "brownout_shed": 0,
        }

        for r in reqs:
            self._push(r.arrival_time, "arrive", r)
        for i, windows in enumerate(self._detected):
            for td, tu in windows:
                self._push(td, "down", i)
                self._push(tu, "up", i)
        self._slo_clock = float("-inf")
        if self._ft is not None:
            self._push(0.0, "tick", None)

        while True:
            t_next = self._heap[0][0] if self._heap else None
            best_t, best_i = None, None
            for i, rep in enumerate(self.replicas):
                t = rep.session.next_action_time()
                if t is not None and (best_t is None or t < best_t):
                    best_t, best_i = t, i
            if t_next is not None and (best_t is None or t_next <= best_t):
                entry = heapq.heappop(self._heap)
                time, _, _, kind, payload = entry
                if kind != "tick":
                    # Ticks are pure observation: they must not stretch
                    # the run horizon past the last real event.
                    self._t_hi = max(self._t_hi, time)
                self._handle(kind, payload, time)
            elif best_t is not None:
                session = self.replicas[best_i].session
                session.time_cap = t_next
                session.step()
                session.time_cap = None
                self._harvest(best_i)
            else:
                break

        # Blocked sessions (admission deadlock with nothing coming) still
        # hold undelivered requests: fail them rather than lose them.
        for i, rep in enumerate(self.replicas):
            if rep.session.has_work():
                for seg in rep.session.drain(rep.session.now):
                    track = self._tracks.get(seg.request_id)
                    if track is not None and not track.done:
                        track.active.discard(i)
                        if not track.active:
                            self._finalize(track, "failed", rep.session.now)
        for track in self._tracks.values():
            if not track.done:  # pragma: no cover - defensive
                self._finalize(track, "failed", self._t_hi)

        return self._assemble()

    # ---- event plumbing -----------------------------------------------------

    def _push(self, time: Seconds, kind: str, payload) -> None:
        heapq.heappush(self._heap, (time, _PRIO.get(kind, 2), self._seq, kind, payload))
        self._seq += 1

    def _harvest(self, i: int) -> None:
        session = self.replicas[i].session
        for ev in session.outbox:
            kind = ev[0]
            if kind == "complete":
                _, rid, metrics = ev
                self._push(metrics.token_times[-1], "complete", (i, rid, metrics))
            else:
                _, subject, t = ev
                self._push(t, kind, (i, subject))
        session.outbox.clear()

    def _handle(self, kind: str, payload, time: Seconds) -> None:
        if kind == "arrive":
            self._on_arrive(payload, time)
        elif kind == "down":
            self._on_down(payload, time)
        elif kind == "up":
            self._on_up(payload, time)
        elif kind == "redispatch":
            self._on_redispatch(payload, time)
        elif kind == "kv-arrive":
            self._on_kv_arrive(payload, time)
        elif kind == "admit":
            i, rid = payload
            track = self._tracks.get(rid)
            if track is not None and not track.done and i in track.active:
                if track.admit_time is None:
                    track.admit_time = time
        elif kind == "token":
            self._on_token(payload, time)
        elif kind == "complete":
            self._on_complete(payload, time)
        elif kind == "failed":
            self._on_failed(payload, time)
        elif kind == "timeout":
            self._on_terminal(payload, time, "timed_out")
        elif kind == "shed":
            self._on_terminal(payload, time, "shed")
        elif kind == "tick":
            self._on_tick(time)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown fleet event kind {kind!r}")

    # ---- dispatching --------------------------------------------------------

    def _any_down(self) -> bool:
        return any(r.detected_down for r in self.replicas)

    def _candidates(self, pred) -> list[tuple[int, Replica]]:
        # With failover off the router has no health reaction at all: it
        # keeps dispatching to a dead replica (the ablation baseline).
        if not self.config.failover:
            return [(i, r) for i, r in enumerate(self.replicas) if pred(r)]
        return [
            (i, r)
            for i, r in enumerate(self.replicas)
            if not r.detected_down and pred(r)
        ]

    def _trace_event(
        self, rid: int, kind: str, t: Seconds, hop: int | None = None
    ) -> None:
        if self._tracing:
            self.tracer.add_request_event(rid, kind, t, hop=hop)

    def _ctx(self, track: _Track) -> "TraceContext | None":
        """The trace context of the dispatch attempt about to start.

        The hop counter is the track's segment count (each dispatch —
        initial, re-dispatch, hedge twin, post-transfer decode — starts
        one segment), so events stamped with a hop tie back to the exact
        attempt that produced them.  ``None`` when tracing is off, which
        keeps the untraced submit path byte-for-byte identical.
        """
        if not self._tracing:
            return None
        from repro.telemetry.fleet import TraceContext

        return TraceContext(
            track.orig.request_id,
            hop=track.segments,
            parent=track.segments - 1 if track.segments else None,
        )

    def _finalize(
        self,
        track: _Track,
        disposition: str,
        t: Seconds,
        metrics: RequestMetrics | None = None,
    ) -> None:
        track.done = True
        track.disposition = disposition
        if disposition == "completed":
            self._completed.append(metrics)
            self._trace_event(track.orig.request_id, "fleet-finish", t)
        elif disposition == "timed_out":
            self._timed_out.append(track.orig)
            self._trace_event(track.orig.request_id, "fleet-timeout", t)
        elif disposition == "shed":
            self._shed.append(track.orig)
            self._trace_event(track.orig.request_id, "fleet-shed", t)
        else:
            self._failed.append(track.orig)
            self._trace_event(track.orig.request_id, "fleet-fail", t)
        self._observe_slo(t, metrics if disposition == "completed" else None)

    # ---- SLO monitoring ------------------------------------------------------

    def _observe_slo(self, t: Seconds, metrics: RequestMetrics | None) -> None:
        """Feed one request disposition to the attached SLO monitor.

        Completed requests are judged against the fleet tracer's SLO
        targets; every non-completed disposition (timeout, shed, failure)
        burns all three budgets.  Observation times are clamped monotone:
        the post-run drain finalizes stragglers at per-replica clocks
        that can sit before the last heap event.
        """
        ft = self._ft
        if ft is None or ft.monitor is None:
            return
        monitor = ft.monitor
        t = max(t, self._slo_clock)
        self._slo_clock = t
        slo = ft.slo
        if metrics is not None:
            verdicts = {
                "ttft": slo is not None and metrics.ttft > slo.ttft_target,
                "tbt": slo is not None and metrics.max_tbt > slo.tbt_target,
                "deadline": False,
            }
        else:
            verdicts = {"ttft": True, "tbt": True, "deadline": True}
        for name, bad in verdicts.items():
            if name in monitor.objectives:
                monitor.observe(name, t, bad)

    def _slo_context(self, t: Seconds) -> tuple[str, ...]:
        """Fault/health annotations overlapping instant ``t`` for alerts."""
        context: list[str] = []
        for rep in self.replicas:
            if rep.is_crashed(t):
                context.append(f"crash:{rep.name}")
            elif rep.detected_down:
                context.append(f"detected-down:{rep.name}")
            if rep.link_degrade_factor(t) > 1.0:
                context.append(f"link-degrade:{rep.name}")
            if rep.machine_faults is not None and rep.machine_faults.is_degraded(t):
                context.append(f"degraded:{rep.name}")
        if self.config.brownout and self._any_down():
            context.append("brownout")
        return tuple(context)

    def _on_tick(self, t: Seconds) -> None:
        """One fleet observation tick: sample time-series, evaluate SLOs.

        Ticks ride the global event heap on the fleet tracer's sample
        grid and stop once the heap drains and every session is idle.
        They never mutate serving state — only the tracer's time-series
        bank and SLO monitor.
        """
        ft = self._ft
        for rep in self.replicas:
            session = rep.session
            ft.timeseries.sample(
                f"{rep.name}/queue_depth", t, float(len(session.waiting))
            )
            ft.timeseries.sample(f"{rep.name}/kv_used_bytes", t, session.pool.used)
            busy = sum(e - b for b, e in session.report.busy_intervals)
            ft.timeseries.sample(f"{rep.name}/busy_s", t, busy)
        ft.timeseries.sample(
            "fleet/up_replicas",
            t,
            float(sum(not r.detected_down for r in self.replicas)),
        )
        ft.timeseries.sample("fleet/completed", t, float(len(self._completed)))
        ft.timeseries.sample("fleet/timed_out", t, float(len(self._timed_out)))
        ft.timeseries.sample("fleet/failed", t, float(len(self._failed)))
        ft.timeseries.sample("fleet/shed", t, float(len(self._shed)))
        if ft.monitor is not None:
            for alert in ft.monitor.check(t, context=self._slo_context(t)):
                self.tracer.add_instant(
                    "alerts",
                    f"burn:{alert.objective}",
                    t,
                    args={
                        "burn_long": alert.burn_rate_long,
                        "burn_short": alert.burn_rate_short,
                    },
                )
        if self._heap or any(r.session.has_work() for r in self.replicas):
            self._push(t + ft.sample_interval_s, "tick", None)

    def _segment(self, track: _Track, at: Seconds, output_len: int | None = None):
        """The replay segment of ``track`` dispatched at ``at``, or None.

        Returns ``None`` (after finalizing the track as timed out) when
        the original absolute deadline has no budget left.  The segment
        re-prefills prompt + delivered tokens and owes only the rest.
        """
        orig = track.orig
        e = len(track.delivered)
        rel = None
        if orig.deadline is not None:
            rel = orig.arrival_time + orig.deadline - at
            if rel <= 0:
                self._finalize(track, "timed_out", at)
                return None
        out = output_len if output_len is not None else orig.output_len - e
        if e == 0 and at == orig.arrival_time and out == orig.output_len:  # repro-lint: disable=float-time-eq -- bit-exact fast path IS the 1-replica identity contract
            return orig
        return replace(
            orig,
            arrival_time=at,
            input_len=orig.input_len + e,
            output_len=out,
            deadline=rel,
        )

    def _no_capacity(self, track: _Track, at: Seconds) -> None:
        """Nothing is up: wait for the next detected recovery or fail."""
        ups = [
            tu
            for windows in self._detected
            for _, tu in windows
            if tu > at
        ]
        if not ups:
            self._finalize(track, "failed", at)
            return
        self._push(min(ups), "redispatch", track.orig.request_id)

    def _dispatch_unified(
        self,
        track: _Track,
        at: Seconds,
        exclude: frozenset[int] = frozenset(),
        hop_kind: str | None = None,
    ) -> int | None:
        cands = [
            (i, r) for i, r in self._candidates(Replica.serves_decode) if i not in exclude
        ]
        if not cands:
            if not exclude:
                self._no_capacity(track, at)
            return None
        seg = self._segment(track, at)
        if seg is None:
            return None
        idx = self.policy.choose(cands, track.orig, at, len(self.replicas))
        ctx = self._ctx(track)
        kind = hop_kind or ("dispatch" if track.segments == 0 else "redispatch")
        self.replicas[idx].session.submit(seg, at, ctx=ctx)
        track.segments += 1
        track.active.add(idx)
        track.stage = "unified"
        self.counters["dispatches"] += 1
        self._trace_event(
            track.orig.request_id, "dispatch", at, hop=ctx.hop if ctx else None
        )
        if self._ft is not None and ctx is not None:
            self._ft.begin_hop(ctx, self.replicas[idx].name, kind, at)
        return idx

    def _dispatch_prefill(self, track: _Track, at: Seconds) -> None:
        cands = self._candidates(Replica.serves_prefill)
        if not cands:
            self._no_capacity(track, at)
            return
        seg = self._segment(track, at, output_len=1)
        if seg is None:
            return
        idx = self.policy.choose(cands, track.orig, at, len(self.replicas))
        ctx = self._ctx(track)
        kind = "dispatch" if track.segments == 0 else "redispatch"
        self.replicas[idx].session.submit(seg, at, ctx=ctx)
        track.segments += 1
        track.active.add(idx)
        track.stage = "prefill"
        self.counters["dispatches"] += 1
        self._trace_event(
            track.orig.request_id, "dispatch", at, hop=ctx.hop if ctx else None
        )
        if self._ft is not None and ctx is not None:
            self._ft.begin_hop(ctx, self.replicas[idx].name, kind, at)

    def _dispatch_decode(self, track: _Track, idx: int, at: Seconds) -> None:
        seg = self._segment(track, at)
        if seg is None:
            return
        ctx = self._ctx(track)
        # Context (prompt + delivered tokens) was built elsewhere and
        # streamed in: the decode replica starts fully prefilled.
        self.replicas[idx].session.submit(
            seg, at, prefilled=seg.input_len, emitted=0, ctx=ctx
        )
        track.segments += 1
        track.active.add(idx)
        track.stage = "decode"
        self.counters["dispatches"] += 1
        self._trace_event(
            track.orig.request_id, "dispatch", at, hop=ctx.hop if ctx else None
        )
        if self._ft is not None and ctx is not None:
            self._ft.begin_hop(ctx, self.replicas[idx].name, "decode", at)

    def _dispatch_initial(self, track: _Track, at: Seconds) -> None:
        if self.config.disaggregate:
            self._dispatch_prefill(track, at)
        else:
            self._dispatch_unified(track, at)

    def _rescue(self, track: _Track, at: Seconds) -> None:
        """Schedule a backed-off router-level re-dispatch (failover path)."""
        track.redispatches += 1
        if track.redispatches > self.config.max_redispatch:
            self._finalize(track, "failed", at)
            return
        delay = retry_delay(
            self.config.retry_backoff_s,
            track.redispatches,
            self.config.retry_jitter,
            self._rng,
            cap=self.config.backoff_cap_s,
        )
        self.counters["redispatches"] += 1
        self._trace_event(track.orig.request_id, "redispatch", at)
        self._push(at + delay, "redispatch", track.orig.request_id)

    # ---- event handlers -----------------------------------------------------

    def _on_arrive(self, request: Request, t: Seconds) -> None:
        track = self._tracks[request.request_id]
        cfg = self.config
        if (
            cfg.brownout
            and self._any_down()
            and request.priority < cfg.brownout_min_priority
        ):
            self.counters["brownout_shed"] += 1
            self._trace_event(request.request_id, "brownout-shed", t)
            self._finalize(track, "shed", t)
            return
        if (
            cfg.hedge
            and request.deadline is not None
            and request.deadline <= cfg.hedge_deadline_s
        ):
            first = self._dispatch_unified(track, t)
            if first is not None:
                second = self._dispatch_unified(
                    track, t, exclude=frozenset({first}), hop_kind="hedge"
                )
                if second is not None:
                    track.hedged = True
                    self._hedged_ids.add(request.request_id)
                    self.counters["hedges"] += 1
                    self._trace_event(request.request_id, "hedge", t)
            return
        self._dispatch_initial(track, t)

    def _on_down(self, i: int, t: Seconds) -> None:
        rep = self.replicas[i]
        rep.detected_down = True
        self.counters["detections"] += 1
        if self._tracing:
            self.tracer.add_counter(
                "up_replicas", t, float(sum(not r.detected_down for r in self.replicas))
            )
        if not self.config.failover:
            return
        drained = rep.session.drain(t)
        self._harvest(i)  # drain may have emitted nothing, but stay safe
        for seg in drained:
            track = self._tracks.get(seg.request_id)
            if track is None or track.done:
                continue
            track.active.discard(i)
            if track.active:
                continue  # a hedge twin is still serving it
            self.counters["failovers"] += 1
            self._trace_event(track.orig.request_id, "failover", t)
            self._rescue(track, t)

    def _on_up(self, i: int, t: Seconds) -> None:
        self.replicas[i].detected_down = False
        if self._tracing:
            self.tracer.add_counter(
                "up_replicas", t, float(sum(not r.detected_down for r in self.replicas))
            )

    def _on_redispatch(self, rid: int, t: Seconds) -> None:
        track = self._tracks.get(rid)
        if track is None or track.done:
            return
        orig = track.orig
        if orig.deadline is not None and t >= orig.arrival_time + orig.deadline:
            self._finalize(track, "timed_out", t)
            return
        self._dispatch_initial(track, t)

    def _on_token(self, payload: tuple[int, int], t: Seconds) -> None:
        i, rid = payload
        track = self._tracks.get(rid)
        if track is None or track.done or i not in track.active:
            return
        if track.hedged and len(track.active) > 1:
            # First token decides the hedge: cancel the slower twin.
            losers = [j for j in track.active if j != i]
            track.active = {i}
            self.counters["hedge_wins"] += 1
            self._trace_event(rid, "hedge-win", t)
            for j in losers:
                if self.replicas[j].session.cancel(rid, t):
                    self.counters["hedge_cancels"] += 1
                    self._trace_event(rid, "hedge-cancel", t)
        track.delivered.append(t)
        if self._ft is not None:
            # The router's own per-token record: exactly the floats that
            # end up in the stitched RequestMetrics, which is what lets
            # the validator reconcile trace TTFT/TBT against the report.
            self.tracer.add_request_event(rid, "token", t)

    def _on_complete(self, payload, t: Seconds) -> None:
        i, rid, metrics = payload
        track = self._tracks.get(rid)
        if track is None or track.done or i not in track.active:
            return
        if track.stage == "prefill" and len(track.delivered) < track.orig.output_len:
            track.active.discard(i)
            self._start_transfer(track, i, t)
            return
        if track.segments == 1 and not track.hedged:
            # Single uninterrupted segment: the replica's metrics are the
            # request's metrics, verbatim (the 1-replica identity path).
            self._finalize(track, "completed", t, metrics=metrics)
            return
        stitched = RequestMetrics(
            request=track.orig,
            admit_time=track.admit_time if track.admit_time is not None else t,
            token_times=tuple(track.delivered),
        )
        self._finalize(track, "completed", t, metrics=stitched)

    def _on_failed(self, payload: tuple[int, Request], t: Seconds) -> None:
        i, seg = payload
        track = self._tracks.get(seg.request_id)
        if track is None or track.done or i not in track.active:
            return
        track.active.discard(i)
        if track.active:
            return  # hedge twin still alive
        if self.config.failover and self.replicas[i].is_crashed(t):
            # The replica died with the request on it; a dead process
            # cannot report failure.  If the crash gets detected, the
            # router rescues the request at detection time.
            for (c0, c1), (td, _) in self._detection_pairs(i):
                if c0 <= t < c1:
                    self._rescue(track, max(td, t))
                    return
        self._finalize(track, "failed", t)

    def _detection_pairs(self, i: int):
        """Crash windows of replica ``i`` zipped with their detections."""
        detected = dict()
        windows = self.replicas[i].crash_windows()
        pairs = []
        for c0, c1 in windows:
            for td, tu in self._detected[i]:
                if c0 <= td < c1:
                    pairs.append(((c0, c1), (td, tu)))
                    break
        return pairs

    def _on_terminal(self, payload: tuple[int, Request], t: Seconds, disposition: str) -> None:
        i, seg = payload
        track = self._tracks.get(seg.request_id)
        if track is None or track.done or i not in track.active:
            return
        track.active.discard(i)
        if track.active:
            return
        self._finalize(track, disposition, t)

    # ---- KV transfer (disaggregation) ---------------------------------------

    def _start_transfer(self, track: _Track, src: int, t: Seconds) -> None:
        """Stream the built KV from ``src`` toward a decode replica."""
        cands = self._candidates(Replica.serves_decode)
        if not cands:
            self._no_capacity(track, t)
            return
        track.stage = "transfer"
        dst = self.policy.choose(cands, track.orig, t, len(self.replicas))
        context_tokens = track.orig.input_len + len(track.delivered)
        nbytes = context_tokens * self.replicas[src].engine.kv_bytes_per_token()
        start = max(t, self._link_busy)
        factor = self.replicas[src].link_degrade_factor(start) * self.replicas[
            dst
        ].link_degrade_factor(start)
        link = self.config.interconnect
        if factor > 1.0:
            link = replace(link, bandwidth=link.bandwidth / factor)
        name = f"kv/{track.orig.request_id}/{track.segments}"
        task = transfer_task(name, link, nbytes, tag="kv-transfer")
        end = start + task.duration
        self._link_busy = end
        self._transfers[name] = TaskResult(
            name=name,
            resource="interconnect",
            start=start,
            end=end,
            tag="kv-transfer",
            cost=task.cost,
        )
        if self._tracing:
            self.tracer.add_task(
                name, "interconnect", start, end, tag="kv-transfer", cost=task.cost
            )
        self._push(end, "kv-arrive", (track.orig.request_id, dst))

    def _on_kv_arrive(self, payload: tuple[int, int], t: Seconds) -> None:
        rid, dst = payload
        track = self._tracks.get(rid)
        if track is None or track.done:
            return
        rep = self.replicas[dst]
        if rep.detected_down or rep.is_crashed(t):
            # The streamed KV landed on a dead replica: lost; replay.
            self._rescue(track, t)
            return
        self._dispatch_decode(track, dst, t)

    # ---- assembly -----------------------------------------------------------

    def _assemble(self) -> FleetResult:
        summaries: list[ReplicaSummary] = []
        freport = ContinuousReport(
            kv_budget_bytes=sum(r.kv_budget_bytes for r in self.replicas)
        )
        horizon = self._t_hi
        for i, rep in enumerate(self.replicas):
            report = rep.session.finish(validate=False)
            horizon = max(horizon, rep.session.now)
            freport.busy_intervals.extend(report.busy_intervals)
            freport.degraded_intervals.extend(report.degraded_intervals)
            freport.peak_kv_bytes += report.peak_kv_bytes
            freport.n_iterations += report.n_iterations
            freport.n_aborts += report.n_aborts
            freport.n_retries += report.n_retries
            summaries.append(
                ReplicaSummary(
                    name=rep.name,
                    machine=rep.engine.machine.name,
                    role=rep.role,
                    report=report,
                    ledger=rep.session.kv_ledger,
                    kv_budget_bytes=rep.kv_budget_bytes,
                    machine_faults=rep.machine_faults,
                    crash_windows=rep.crash_windows(),
                    detected_windows=tuple(self._detected[i]),
                    machine_spec=rep.engine.machine,
                )
            )
        freport.completed = sorted(self._completed, key=lambda m: m.request.request_id)
        freport.timed_out = sorted(self._timed_out, key=lambda r: r.request_id)
        freport.shed = sorted(self._shed, key=lambda r: r.request_id)
        freport.failed = sorted(self._failed, key=lambda r: r.request_id)
        transfers = None
        if self._transfers:
            busy = sum(tr.duration for tr in self._transfers.values())
            transfers = ScheduleResult(
                tasks=dict(self._transfers),
                makespan=max(tr.end for tr in self._transfers.values()),
                busy_time={"interconnect": busy},
                tag_time={"kv-transfer": busy},
            )
        if self._tracing:
            for i, rep in enumerate(self.replicas):
                for td, tu in self._detected[i]:
                    self.tracer.add_region(
                        f"replica:{rep.name}", "down", td, min(tu, horizon)
                    )
        result = FleetResult(
            report=freport,
            replicas=summaries,
            transfers=transfers,
            counters=dict(self.counters),
            hedged_ids=frozenset(self._hedged_ids),
            horizon=horizon,
            interconnect=self.config.interconnect,
        )
        if self._ft is not None:
            # Post-hoc watt lanes on the tick grid: metering reads the
            # completed trace, so it can't race in-flight span recording
            # and provably changes nothing about the result.
            from repro.telemetry.power import sample_fleet_power

            sample_fleet_power(self._ft, result)
        return result
