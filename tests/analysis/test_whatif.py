"""What-if sensitivity: analytic re-pricing matches actual re-simulation."""

import pytest

from repro.analysis.whatif import (
    STANDARD_KNOBS,
    cross_validate,
    reprice_tasks,
    whatif_power_sensitivity,
    whatif_sensitivity,
)
from repro.engine.base import RESOURCES
from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.events import EventSimulator, SimTask
from repro.hardware.spec import PC_HIGH


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


class TestKnobs:
    def test_standard_knob_set(self):
        assert set(STANDARD_KNOBS) == {
            "pcie_bw_x2",
            "gpu_bw_x2",
            "cpu_bw_x2",
            "launch_zero",
            "sync_zero",
            "cpu_cores_x2",
            "cpu_cores_half",
        }

    def test_knobs_touch_only_their_field(self):
        m = PC_HIGH
        pcie = STANDARD_KNOBS["pcie_bw_x2"](m)
        assert pcie.link.bandwidth == 2.0 * m.link.bandwidth
        assert pcie.gpu == m.gpu and pcie.cpu == m.cpu

        gpu = STANDARD_KNOBS["gpu_bw_x2"](m)
        assert gpu.gpu.memory_bandwidth == 2.0 * m.gpu.memory_bandwidth
        assert gpu.cpu == m.cpu and gpu.link == m.link

        launch = STANDARD_KNOBS["launch_zero"](m)
        assert launch.gpu.launch_overhead == 0.0
        assert launch.cpu.launch_overhead == 0.0
        assert launch.sync_overhead == m.sync_overhead

        sync = STANDARD_KNOBS["sync_zero"](m)
        assert sync.sync_overhead == 0.0

        half = STANDARD_KNOBS["cpu_cores_half"](m)
        assert half.cpu.compute_flops == 0.5 * m.cpu.compute_flops
        assert half.cpu.memory_bandwidth == m.cpu.memory_bandwidth

    def test_original_machine_untouched(self):
        before = PC_HIGH.link.bandwidth
        STANDARD_KNOBS["pcie_bw_x2"](PC_HIGH)
        assert PC_HIGH.link.bandwidth == before


class TestReprice:
    def test_identity_reprice_is_bit_identical(self, engine):
        tasks = engine.iteration_tasks(64, 1, 1)
        repriced = reprice_tasks(tasks, engine.machine)
        for orig, new in zip(tasks, repriced):
            assert new.name == orig.name
            assert new.duration == orig.duration

    def test_costless_tasks_pass_through(self):
        raw = SimTask("raw", "gpu", 0.25)
        out = reprice_tasks([raw], PC_HIGH)
        assert out[0] is raw


class TestSensitivity:
    def test_sorted_best_first(self, engine):
        tasks = engine.iteration_tasks(64, 1, 1)
        results = whatif_sensitivity(tasks, engine.machine)
        assert set(r.knob for r in results) == set(STANDARD_KNOBS)
        spans = [r.predicted_makespan for r in results]
        assert spans == sorted(spans)

    def test_baseline_matches_schedule(self, engine):
        tasks = engine.iteration_tasks(64, 1, 1)
        actual = EventSimulator(list(RESOURCES)).run(tasks).makespan
        results = whatif_sensitivity(tasks, engine.machine)
        for r in results:
            assert r.baseline_makespan == pytest.approx(actual, rel=1e-12)

    def test_directions(self, engine):
        tasks = engine.iteration_tasks(64, 1, 1)
        by_knob = {r.knob: r for r in whatif_sensitivity(tasks, engine.machine)}
        # Pure improvements can never slow the schedule down.
        for knob in ("pcie_bw_x2", "gpu_bw_x2", "cpu_bw_x2", "launch_zero",
                     "sync_zero", "cpu_cores_x2"):
            assert by_knob[knob].predicted_speedup >= 1.0 - 1e-12
        # Halving CPU throughput can never speed it up.
        assert by_knob["cpu_cores_half"].predicted_speedup <= 1.0 + 1e-12


class TestPowerSensitivity:
    def test_sorted_by_perf_per_watt(self, engine):
        tasks = engine.iteration_tasks(64, 1, 1)
        results = whatif_power_sensitivity(tasks, engine.machine)
        assert set(r.knob for r in results) == set(STANDARD_KNOBS)
        gains = [r.perf_per_watt_gain for r in results]
        assert gains == sorted(gains, reverse=True)

    def test_fixed_work_gain_is_energy_ratio(self, engine):
        # Work is fixed across knobs, so perf/W gain must equal E_base/E_pred
        # and a knob that changes nothing must land exactly at 1.0 on both.
        tasks = engine.iteration_tasks(64, 1, 1)
        results = whatif_power_sensitivity(
            tasks, engine.machine, knobs={"identity": lambda m: m}
        )
        (row,) = results
        assert row.predicted_speedup == pytest.approx(1.0, rel=1e-12)
        assert row.perf_per_watt_gain == pytest.approx(1.0, rel=1e-12)
        assert row.baseline_joules == pytest.approx(row.predicted_joules)

    def test_rows_carry_watts(self, engine):
        tasks = engine.iteration_tasks(64, 1, 1)
        for r in whatif_power_sensitivity(tasks, engine.machine):
            row = r.as_row()
            assert row["baseline_w"] > 0.0 and row["predicted_w"] > 0.0
            assert row["perf_per_watt_gain"] == pytest.approx(
                row["baseline_j"] / row["predicted_j"]
            )


def test_cross_validation_within_acceptance(engine):
    """Acceptance bar: analytic prediction within 5% of re-simulation."""
    report = cross_validate(engine, 64, 1)
    assert set(report) == set(STANDARD_KNOBS)
    for knob, row in report.items():
        assert row["rel_error"] <= 0.05, f"{knob}: {row}"
        # The DAG shape is machine-independent, so in practice the two
        # agree to float noise, far inside the 5% bar.
        assert row["rel_error"] <= 1e-9, f"{knob}: {row}"
