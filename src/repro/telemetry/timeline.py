"""Matplotlib timeline / Gantt rendering of a recorded trace.

A static figure version of the Perfetto view: device lanes as horizontal
Gantt bars colored by operator tag, request swim lanes underneath, fault
windows shaded across all lanes, and the counter time-series (queue depth,
running batch, KV bytes) as step plots on a second axis.

Matplotlib is an *optional* dependency of this repository; everything else
in :mod:`repro.telemetry` works without it.  :func:`plot_timeline` raises
:class:`MissingDependencyError` with an actionable message when it is not
installed, and the CLI turns that into a clean error instead of a
traceback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.telemetry.tracer import Tracer

__all__ = ["MissingDependencyError", "plot_timeline"]

# A muted categorical cycle for operator tags (kept library-neutral).
_TAG_COLORS = (
    "#4C78A8",
    "#F58518",
    "#54A24B",
    "#B279A2",
    "#E45756",
    "#72B7B2",
    "#9D755D",
    "#EECA3B",
)
_FAULT_SHADE = "#D62728"
_DEGRADED_SHADE = "#FF7F0E"


class MissingDependencyError(RuntimeError):
    """An optional plotting dependency is not installed."""


def _import_pyplot():
    try:
        import matplotlib
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise MissingDependencyError(
            "matplotlib is required for timeline figures but is not "
            "installed; install it (pip install matplotlib) or drop the "
            "figure option"
        ) from exc
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    return plt


def plot_timeline(
    tracer: "Tracer",
    path,
    title: str = "Simulated serving timeline",
    max_requests: int = 16,
) -> None:
    """Render the trace as a Gantt timeline and save it to ``path``.

    Args:
        tracer: A populated :class:`~repro.telemetry.tracer.Tracer`.
        path: Output image path (any extension matplotlib understands).
        title: Figure title.
        max_requests: Cap on rendered request swim lanes (earliest first);
            beyond it the lanes would shrink into unreadable slivers.

    Raises:
        MissingDependencyError: When matplotlib is not installed.
        ValueError: When the tracer holds no task spans (nothing to draw).
    """
    plt = _import_pyplot()
    if not tracer.task_spans:
        raise ValueError("tracer holds no task spans; run a traced simulation first")

    lanes = list(tracer.lanes)
    request_ids = sorted({s.request_id for s in tracer.request_spans})
    shown_requests = request_ids[:max_requests]
    tags = sorted({s.tag or "op" for s in tracer.task_spans})
    tag_color = {tag: _TAG_COLORS[i % len(_TAG_COLORS)] for i, tag in enumerate(tags)}

    counter_names = sorted({c.series for c in tracer.counters})
    fig_height = 1.2 + 0.5 * (len(lanes) + len(shown_requests)) + (2.2 if counter_names else 0)
    n_axes = 2 if counter_names else 1
    fig, axes = plt.subplots(
        n_axes,
        1,
        figsize=(12, fig_height),
        sharex=True,
        gridspec_kw={"height_ratios": [3, 1] if counter_names else [1]},
    )
    ax = axes[0] if counter_names else axes

    # Row layout: devices on top, then request swim lanes.
    rows: dict[tuple[str, object], int] = {}
    labels: list[str] = []
    for lane in lanes:
        rows[("device", lane)] = len(labels)
        labels.append(lane)
    for rid in shown_requests:
        rows[("request", rid)] = len(labels)
        labels.append(f"req-{rid}")

    for span in tracer.task_spans:
        y = rows[("device", span.lane)]
        ax.broken_barh(
            [(span.start, span.duration)],
            (y - 0.38, 0.76),
            facecolors=tag_color[span.tag or "op"],
            linewidth=0,
        )
    phase_alpha = {"queued": 0.25, "prefill": 0.6, "decode": 1.0}
    for span in tracer.request_spans:
        key = ("request", span.request_id)
        if key not in rows:
            continue
        ax.broken_barh(
            [(span.start, span.end - span.start)],
            (rows[key] - 0.3, 0.6),
            facecolors="#4C78A8",
            alpha=phase_alpha.get(span.phase, 0.5),
            linewidth=0,
        )

    for region in tracer.regions:
        if region.lane == "faults":
            ax.axvspan(region.start, region.end, color=_FAULT_SHADE, alpha=0.08)
        elif region.name == "degraded":
            ax.axvspan(region.start, region.end, color=_DEGRADED_SHADE, alpha=0.08)

    ax.set_yticks(range(len(labels)))
    ax.set_yticklabels(labels)
    ax.invert_yaxis()
    ax.set_title(title)
    ax.grid(axis="x", linewidth=0.3, alpha=0.5)
    handles = [
        plt.Rectangle((0, 0), 1, 1, facecolor=tag_color[t], label=t) for t in tags
    ]
    ax.legend(handles=handles, loc="upper right", fontsize="small", ncol=2)
    if len(request_ids) > len(shown_requests):
        ax.annotate(
            f"(+{len(request_ids) - len(shown_requests)} more requests not shown)",
            xy=(0.01, 0.01),
            xycoords="axes fraction",
            fontsize="x-small",
        )

    if counter_names:
        ax2 = axes[1]
        for i, series in enumerate(counter_names):
            samples = tracer.counter_series(series)
            times = [t for t, _ in samples]
            values = [v for _, v in samples]
            ax2.step(
                times,
                values,
                where="post",
                label=series,
                color=_TAG_COLORS[i % len(_TAG_COLORS)],
                linewidth=1.0,
            )
        ax2.set_xlabel("simulated time (s)")
        ax2.set_ylabel("counters")
        ax2.set_yscale("symlog")
        ax2.grid(axis="x", linewidth=0.3, alpha=0.5)
        ax2.legend(loc="upper right", fontsize="x-small", ncol=2)
    else:
        ax.set_xlabel("simulated time (s)")

    fig.tight_layout()
    fig.savefig(path, dpi=150)
    plt.close(fig)
