"""Figure 10 — end-to-end FP16 speedup over llama.cpp on PC-High.

Paper: average 8.32 tokens/s (peak 16.06), average speedup 7.23x, up to
11.69x (Falcon-40B); speedup grows with output length.
"""

import numpy as np
from conftest import run_once

from repro.bench.end_to_end import run_fig10


def test_fig10_fp16_pc_high(benchmark, record_rows):
    rows = run_once(benchmark, run_fig10)
    record_rows("fig10_fp16_pchigh", rows, "Figure 10 — FP16 generation speed, PC-High")

    valid = [r for r in rows if not r["note"]]
    assert valid, "at least some models must fit PC-High in FP16"
    speedups = np.array([r["speedup"] for r in valid])
    tps = np.array([r["powerinfer_tps"] for r in valid])
    # Paper-shaped outcomes: large mean speedup, peak near an order of
    # magnitude, single-digit-to-teens absolute tokens/s.
    assert speedups.mean() > 4.0
    assert speedups.max() > 8.0
    assert 4.0 < tps.mean() < 40.0

    # Speedup grows with output length for each (model, input) pair.
    for model in {r["model"] for r in valid}:
        for inp in {r["input"] for r in valid if r["model"] == model}:
            series = [
                r["speedup"]
                for r in valid
                if r["model"] == model and r["input"] == inp
            ]
            assert series[0] <= series[-1] * 1.05, (model, inp, series)
