"""Tests for the placement MILP (paper Section 6.3)."""

import numpy as np
import pytest

from repro.hardware.spec import PC_HIGH
from repro.solver.greedy import greedy_placement
from repro.solver.ilp import SolverOptions, communication_threshold, solve_ilp
from repro.solver.placement import NeuronGroup


def make_groups(rng, n_groups=4, n_neurons=256, neuron_bytes=1e6):
    return [
        NeuronGroup(
            name=f"g{i}", impacts=rng.random(n_neurons), neuron_bytes=neuron_bytes
        )
        for i in range(n_groups)
    ]


class TestCommunicationThreshold:
    def test_formula(self):
        group = NeuronGroup(name="g", impacts=np.ones(10), neuron_bytes=1e6)
        c_l = communication_threshold(group, PC_HIGH)
        t_gpu = 1e6 / PC_HIGH.gpu.effective_bandwidth
        t_cpu = 1e6 / PC_HIGH.cpu.effective_bandwidth
        expected = int(np.ceil(PC_HIGH.sync_overhead / (t_cpu - t_gpu)))
        assert c_l == expected

    def test_bigger_neurons_need_fewer(self):
        small = NeuronGroup(name="s", impacts=np.ones(10), neuron_bytes=1e3)
        big = NeuronGroup(name="b", impacts=np.ones(10), neuron_bytes=1e7)
        assert communication_threshold(big, PC_HIGH) < communication_threshold(
            small, PC_HIGH
        )


class TestSolveIlp:
    def test_respects_gpu_budget(self, rng):
        groups = make_groups(rng)
        budget = 100 * 1e6
        policy = solve_ilp(groups, PC_HIGH, budget, options=SolverOptions(batch_size=8))
        assert policy.gpu_bytes <= budget + 1e-6
        assert policy.solver_name == "ilp"

    def test_prefers_high_impact_neurons(self, rng):
        groups = make_groups(rng, n_groups=1, n_neurons=128)
        policy = solve_ilp(
            groups, PC_HIGH, gpu_budget_bytes=64 * 1e6,
            options=SolverOptions(batch_size=4),
        )
        mask = policy.mask("g0")
        on = groups[0].impacts[mask]
        off = groups[0].impacts[~mask]
        assert on.mean() > off.mean()

    def test_matches_greedy_on_relaxed_problem(self, rng):
        # With communication constraints off, the MILP is a knapsack whose
        # greedy solution is near-optimal; ILP must be at least as good.
        groups = make_groups(rng)
        budget = 200 * 1e6
        ilp = solve_ilp(
            groups,
            PC_HIGH,
            budget,
            options=SolverOptions(batch_size=8, enforce_communication=False),
        )
        greedy = greedy_placement(groups, budget, batch_size=8)
        assert ilp.gpu_impact_share() >= greedy.gpu_impact_share() - 0.01

    def test_zero_budget_places_nothing(self, rng):
        groups = make_groups(rng)
        policy = solve_ilp(groups, PC_HIGH, 0.0, options=SolverOptions(batch_size=8))
        assert policy.gpu_bytes == 0.0

    def test_communication_constraint_all_or_at_least_cl(self, rng):
        # Make C_l large relative to the group so partial placements are
        # forbidden: every group must have 0 or >= C_l neurons on GPU.
        groups = make_groups(rng, n_groups=3, n_neurons=64, neuron_bytes=2e4)
        c_l = communication_threshold(groups[0], PC_HIGH)
        assert c_l > 1  # premise of the test
        budget = 40 * 2e4  # less than one full group
        policy = solve_ilp(groups, PC_HIGH, budget, options=SolverOptions(batch_size=4))
        for group in groups:
            count = int(policy.mask(group.name).sum())
            assert count == 0 or count >= c_l, (count, c_l)

    def test_cpu_budget_forces_spill_to_gpu(self, rng):
        groups = make_groups(rng, n_groups=2, n_neurons=64)
        total = sum(g.total_bytes for g in groups)
        cpu_budget = total * 0.5  # CPU can hold only half
        policy = solve_ilp(
            groups,
            PC_HIGH,
            gpu_budget_bytes=total,
            cpu_budget_bytes=cpu_budget,
            options=SolverOptions(batch_size=8),
        )
        assert policy.gpu_bytes >= total - cpu_budget - 1e-6

    def test_infeasible_raises(self, rng):
        groups = make_groups(rng, n_groups=1, n_neurons=32)
        with pytest.raises(RuntimeError):
            solve_ilp(
                groups,
                PC_HIGH,
                gpu_budget_bytes=0.0,
                cpu_budget_bytes=0.0,  # nothing fits anywhere
                options=SolverOptions(batch_size=8),
            )

    def test_negative_budget_rejected(self, rng):
        with pytest.raises(ValueError):
            solve_ilp(make_groups(rng), PC_HIGH, -1.0)

    def test_byte_weighting_prefers_heavy_blocks(self, rng):
        # Two groups, equal impact per neuron, but one's neurons are 100x
        # heavier.  Byte-weighted objective should prefer the heavy block
        # (more computation saved); raw Eq-1 prefers packing many light
        # neurons.
        light = NeuronGroup(name="light", impacts=np.full(100, 0.5), neuron_bytes=1e4)
        heavy = NeuronGroup(name="heavy", impacts=np.full(100, 0.5), neuron_bytes=1e6)
        budget = 50 * 1e6
        weighted = solve_ilp(
            [light, heavy], PC_HIGH, budget,
            options=SolverOptions(batch_size=4, enforce_communication=False),
        )
        raw = solve_ilp(
            [light, heavy], PC_HIGH, budget,
            options=SolverOptions(
                batch_size=4, enforce_communication=False, weight_impact_by_bytes=False
            ),
        )
        assert weighted.mask("heavy").sum() >= raw.mask("heavy").sum()
        assert raw.mask("light").sum() == 100  # raw metric grabs cheap impact
