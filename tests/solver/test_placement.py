"""Tests for placement-policy containers and neuron tables."""

import numpy as np
import pytest

from repro.solver.placement import NeuronGroup, NeuronTable, PlacementPolicy


@pytest.fixture
def groups(rng):
    return [
        NeuronGroup(name="l0.mlp", impacts=rng.random(16), neuron_bytes=4.0),
        NeuronGroup(name="l1.mlp", impacts=rng.random(16), neuron_bytes=4.0),
    ]


@pytest.fixture
def policy(groups):
    masks = [np.zeros(16, dtype=bool), np.zeros(16, dtype=bool)]
    masks[0][:8] = True
    return PlacementPolicy(groups=groups, gpu_masks=masks, solver_name="test")


class TestNeuronGroup:
    def test_totals(self, groups):
        assert groups[0].n_neurons == 16
        assert groups[0].total_bytes == 64.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            NeuronGroup(name="bad", impacts=np.array([]), neuron_bytes=1.0)
        with pytest.raises(ValueError):
            NeuronGroup(name="bad", impacts=rng.random(4), neuron_bytes=0.0)
        with pytest.raises(ValueError):
            NeuronGroup(name="bad", impacts=np.array([-1.0]), neuron_bytes=1.0)


class TestPolicy:
    def test_mask_lookup(self, policy):
        assert policy.mask("l0.mlp").sum() == 8
        with pytest.raises(KeyError):
            policy.mask("ghost")

    def test_byte_accounting(self, policy):
        assert policy.gpu_bytes == 8 * 4.0
        assert policy.cpu_bytes == 24 * 4.0
        assert policy.gpu_bytes + policy.cpu_bytes == sum(
            g.total_bytes for g in policy.groups
        )

    def test_gpu_impact_share(self, groups):
        masks = [np.ones(16, dtype=bool), np.zeros(16, dtype=bool)]
        policy = PlacementPolicy(groups=groups, gpu_masks=masks)
        total = sum(g.impacts.sum() for g in groups)
        assert policy.gpu_impact_share() == pytest.approx(
            groups[0].impacts.sum() / total
        )

    def test_group_gpu_fraction(self, policy):
        assert policy.group_gpu_fraction("l0.mlp") == 0.5
        assert policy.group_gpu_fraction("l1.mlp") == 0.0

    def test_mismatched_mask_rejected(self, groups):
        with pytest.raises(ValueError):
            PlacementPolicy(groups=groups, gpu_masks=[np.zeros(16, dtype=bool)])
        with pytest.raises(ValueError):
            PlacementPolicy(
                groups=groups,
                gpu_masks=[np.zeros(15, dtype=bool), np.zeros(16, dtype=bool)],
            )


class TestNeuronTable:
    def test_table_partitions_indices(self, policy):
        table = policy.neuron_table("l0.mlp")
        assert table.n_neurons == 16
        assert set(table.gpu_indices) == set(range(8))
        assert set(table.cpu_indices) == set(range(8, 16))

    def test_device_lookup(self, policy):
        table = policy.neuron_table("l0.mlp")
        assert table.device_of(3) == "gpu"
        assert table.device_of(12) == "cpu"
        with pytest.raises(KeyError):
            table.device_of(99)

    def test_paper_table_size_estimate(self):
        # Section 5.2: neuron tables for OPT-175B cost ~9 MB.
        from repro.models.config import OPT_175B

        per_layer = OPT_175B.mlp_neurons_per_layer + OPT_175B.attn_neurons_per_layer
        total_neurons = OPT_175B.n_layers * per_layer
        table = NeuronTable(
            gpu_indices=np.arange(total_neurons // 2),
            cpu_indices=np.arange(total_neurons - total_neurons // 2),
        )
        assert table.nbytes() < 30e6  # same order as the paper's 9 MB
