"""Table 2 — LLM accuracy: original vs sparse-predicted execution.

Runs the numerical substrate: small numpy transformers (one ReLU/OPT-style,
one ReGLU/LLaMA-style) with per-layer predictors trained on profiled
activations, evaluated on the four synthetic task families of
:mod:`repro.workloads.tasks`.  Reported metric: answer agreement between
dense and sparse-predicted execution (dense is the reference, so Table 2's
"negligible accuracy difference" maps to agreement ~= 1.0), plus predictor
quality and realized sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.engine.numerical import NumericalHybridEngine
from repro.models.config import Activation, tiny_config
from repro.models.transformer import Transformer
from repro.models.weights import init_weights
from repro.predictor.mlp import MlpPredictor
from repro.predictor.training import collect_training_data
from repro.sparsity.powerlaw import synthesize_activation_probs
from repro.workloads.tasks import TASK_FAMILIES, evaluate_agreement, make_task

__all__ = ["build_sparse_system", "run_table2"]


def build_sparse_system(
    activation: str = Activation.RELU,
    n_layers: int = 2,
    d_model: int = 64,
    d_ffn: int = 256,
    mean_rate: float = 0.15,
    hidden: int = 64,
    train_requests: int = 24,
    epochs: int = 40,
    seed: int = 0,
) -> tuple[Transformer, NumericalHybridEngine, list[MlpPredictor]]:
    """Create a tiny model + trained predictors + hybrid engine."""
    rng = np.random.default_rng(seed)
    cfg = tiny_config(
        name=f"tiny-{activation}",
        n_layers=n_layers,
        d_model=d_model,
        d_ffn=d_ffn,
        activation=activation,
    )
    probs = [
        synthesize_activation_probs(cfg.d_ffn, rng, mean_activation_rate=mean_rate)
        for _ in range(cfg.n_layers)
    ]
    model = Transformer(init_weights(cfg, rng, activation_probs=probs))
    requests = [
        rng.integers(0, cfg.vocab_size, size=16) for _ in range(train_requests)
    ]
    predictors: list[MlpPredictor] = []
    for li in range(cfg.n_layers):
        x, y = collect_training_data(model, li, requests)
        pred = MlpPredictor(cfg.d_model, hidden, cfg.d_ffn, rng=rng)
        pred.fit(x, y, rng=rng, epochs=epochs, lr=1.0)
        predictors.append(pred)
    engine = NumericalHybridEngine(model, list(predictors))
    return model, engine, predictors


def run_table2(
    n_instances: int = 16,
    seed: int = 0,
    **system_kwargs,
) -> list[dict]:
    """Agreement of sparse-predicted vs dense answers per task family."""
    rows = []
    for activation in (Activation.RELU, Activation.REGLU):
        model, engine, predictors = build_sparse_system(
            activation=activation, seed=seed, **system_kwargs
        )
        rng = np.random.default_rng(seed + 1)
        for spec in TASK_FAMILIES:
            instances = make_task(spec, n_instances, model.config.vocab_size, rng)
            agreement = evaluate_agreement(model, engine, instances)
            rows.append(
                {
                    "model": model.config.name,
                    "task": spec.name,
                    "dense_ref": 1.0,
                    "sparse_agreement": agreement,
                    "miss_rate": engine.stats.miss_rate,
                }
            )
    return rows
