"""Design-choice ablations beyond the paper's Figure 15 (see DESIGN.md).

Each sweep isolates one mechanism and asserts its expected direction.
"""

from conftest import run_once

from repro.bench.ablations import (
    run_ablation_impact_weighting,
    run_ablation_predictor_budget,
    run_ablation_selective_sync,
    run_ablation_solver_batching,
    run_ablation_sync_overhead,
    run_prompt_heavy,
)


def test_sync_overhead_sensitivity(benchmark, record_rows):
    rows = run_once(benchmark, run_ablation_sync_overhead)
    record_rows("ablation_sync_overhead", rows, "Ablation — T_sync sweep")

    # Costlier synchronization raises the communication threshold C_l ...
    thresholds = [r["c_l_neurons"] for r in rows]
    assert thresholds == sorted(thresholds)
    # ... and can only slow serving down.
    assert rows[0]["tokens_per_s"] >= rows[-1]["tokens_per_s"]


def test_selective_sync_helps(benchmark, record_rows):
    rows = run_once(benchmark, run_ablation_selective_sync)
    record_rows("ablation_selective_sync", rows, "Ablation — selective synchronization")

    on = next(r for r in rows if r["selective_sync"])
    off = next(r for r in rows if not r["selective_sync"])
    assert on["tokens_per_s"] >= off["tokens_per_s"]


def test_predictor_budget_tradeoff(benchmark, record_rows):
    rows = run_once(benchmark, run_ablation_predictor_budget)
    record_rows("ablation_predictor_budget", rows, "Ablation — predictor accuracy target")

    # Stricter accuracy targets need bigger predictors ...
    sizes = [r["predictor_gib"] for r in rows]
    assert sizes == sorted(sizes)
    # ... which crowd hot neurons off the GPU.
    shares = [r["gpu_load_share"] for r in rows]
    assert shares == sorted(shares, reverse=True)


def test_solver_batching_tradeoff(benchmark, record_rows):
    rows = run_once(benchmark, run_ablation_solver_batching)
    record_rows("ablation_solver_batching", rows, "Ablation — ILP neuron-batch size")

    # Coarser batches barely hurt the objective (within 2%) ...
    shares = [r["gpu_impact_share"] for r in rows]
    assert max(shares) - min(shares) < 0.02
    # ... while the finest granularity costs the most solve time.
    assert rows[0]["solve_s"] >= rows[-1]["solve_s"]


def test_impact_weighting_matters(benchmark, record_rows):
    rows = run_once(benchmark, run_ablation_impact_weighting)
    record_rows("ablation_impact_weighting", rows, "Ablation — objective weighting")

    weighted = next(r for r in rows if r["byte_weighted"])
    raw = next(r for r in rows if not r["byte_weighted"])
    # The byte-weighted objective maximizes GPU-served COMPUTE (Figure 12's
    # quantity); the literal Eq-1 objective maximizes raw activation count.
    assert weighted["gpu_compute_share"] >= raw["gpu_compute_share"]
    assert raw["raw_impact_share"] >= weighted["raw_impact_share"] - 0.01


def test_prompt_heavy_limits_gains(benchmark, record_rows):
    rows = run_once(benchmark, run_prompt_heavy)
    record_rows("ablation_prompt_heavy", rows, "Section 8.2 — prompt-heavy workloads")

    by_shape = {(r["input"], r["output"]): r["speedup"] for r in rows}
    # Long-prompt/short-output shows the smallest advantage (Section 8.2).
    assert by_shape[(512, 8)] < by_shape[(64, 128)]
    assert by_shape[(512, 8)] < by_shape[(8, 512)]
