"""Sparsity and skewness statistics over activation frequencies.

These metrics drive two parts of the system: the adaptive predictor sizing
(paper Section 5.1 keys predictor capacity off layer *sparsity* and
*skewness*) and the hot/cold classification the solver starts from
(Insight-1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sparsity",
    "gini",
    "skewness",
    "hot_neuron_mask",
    "classify_hot_cold",
]


def sparsity(frequencies: np.ndarray, total_tokens: int | None = None) -> float:
    """Average inactive fraction per token.

    If ``frequencies`` are counts, ``total_tokens`` converts them to rates;
    if they are already probabilities, omit it.
    """
    freq = np.asarray(frequencies, dtype=np.float64)
    if freq.size == 0:
        raise ValueError("frequencies must be non-empty")
    rates = freq / total_tokens if total_tokens else freq
    if (rates < 0).any() or (rates > 1).any():
        raise ValueError("activation rates must lie in [0, 1]")
    return float(1.0 - rates.mean())


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0=uniform, ->1=point).

    Used as the layer skewness measure for adaptive predictor sizing.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0:
        raise ValueError("values must be non-empty")
    if (v < 0).any():
        raise ValueError("values must be non-negative")
    total = v.sum()
    if total == 0:
        return 0.0
    n = v.size
    ranks = np.arange(1, n + 1)
    g = (2.0 * (ranks * v).sum()) / (n * total) - (n + 1.0) / n
    # Uniform inputs can land at -epsilon through float cancellation.
    return float(max(g, 0.0))


def skewness(frequencies: np.ndarray) -> float:
    """Layer activation skewness in [0, 1) — alias for the Gini coefficient."""
    return gini(frequencies)


def hot_neuron_mask(frequencies: np.ndarray, mass: float = 0.80) -> np.ndarray:
    """Boolean mask of the smallest neuron set covering ``mass`` activations.

    This is the paper's hot/cold boundary: hot-activated neurons are the
    consistently activated minority carrying >=80% of activation mass.
    """
    if not 0.0 < mass <= 1.0:
        raise ValueError("mass must be in (0, 1]")
    freq = np.asarray(frequencies, dtype=np.float64)
    if freq.size == 0:
        raise ValueError("frequencies must be non-empty")
    total = freq.sum()
    if total <= 0:
        raise ValueError("frequencies must have positive mass")
    order = np.argsort(freq)[::-1]
    cum = np.cumsum(freq[order]) / total
    k = int(np.searchsorted(cum, mass)) + 1
    mask = np.zeros(freq.size, dtype=bool)
    mask[order[:k]] = True
    return mask


def classify_hot_cold(
    frequencies: np.ndarray, mass: float = 0.80
) -> tuple[np.ndarray, np.ndarray]:
    """Split neuron indices into (hot, cold) arrays by activation mass."""
    mask = hot_neuron_mask(frequencies, mass)
    idx = np.arange(mask.size)
    return idx[mask], idx[~mask]
