"""Generic sparse-kernel baselines: CSR (cuSPARSE/PyTorch-sparse analog)
and a PIT-style permutation operator.

Figure 16 compares PowerInfer's neuron-aware operator against
general-purpose sparse libraries.  Their performance structure — which is
what we reproduce — comes from two costs the neuron-aware operator avoids:

* **Format conversion**: dynamic sparsity means the activated weight matrix
  changes every token, so a CSR library must convert dense -> CSR each call
  (touching the whole matrix) before the SpMV runs.
* **Index overhead**: CSR tracks each non-zero *element* (a column index per
  value), inflating bytes moved by 1 + index_bytes/value_bytes even when
  non-zeros are whole rows.

The PIT-like operator models permutation-invariant transformation: gather
active rows into a dense tile and run dense compute — close to the
neuron-aware GPU operator, but GPU-only in the original system (the paper's
stated contrast) and with a small per-call permutation-table cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.costmodel import OpWork

__all__ = ["CsrMatrix", "csr_from_row_sparse", "csr_spmv", "csr_work", "pit_gemv", "pit_work"]


@dataclass(frozen=True)
class CsrMatrix:
    """Compressed sparse row matrix (values / column indices / row pointers)."""

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: tuple[int, int]

    @property
    def nnz(self) -> int:
        return int(self.data.size)


def csr_from_row_sparse(weight: np.ndarray, active_rows: np.ndarray) -> CsrMatrix:
    """Convert a row-sparse dense matrix to CSR.

    Rows not in ``active_rows`` become empty; active rows keep all their
    elements (neuron-granularity sparsity has dense rows).  The conversion
    itself reads the full dense matrix — the overhead the paper's Figure 16
    attributes to conventional sparse libraries.
    """
    m, n = weight.shape
    mask = np.zeros(m, dtype=bool)
    mask[active_rows] = True
    row_lengths = np.where(mask, n, 0)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(row_lengths, out=indptr[1:])
    data = weight[mask].reshape(-1).copy()
    indices = np.tile(np.arange(n, dtype=np.int64), int(mask.sum()))
    return CsrMatrix(data=data, indices=indices, indptr=indptr, shape=(m, n))


def csr_spmv(csr: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """CSR sparse matrix-vector product ``A @ x`` (vectorized per row)."""
    m, n = csr.shape
    if x.shape != (n,):
        raise ValueError(f"x must have shape ({n},)")
    out = np.zeros(m, dtype=np.result_type(csr.data, x))
    products = csr.data * x[csr.indices]
    if products.size:
        # reduceat over the starts of non-empty rows only: empty rows would
        # alias the next row's start (or fall off the end of the array).
        row_nonempty = np.diff(csr.indptr) > 0
        starts = csr.indptr[:-1][row_nonempty]
        out[row_nonempty] = np.add.reduceat(products, starts)
    return out


def csr_work(
    m: int,
    n: int,
    n_active: int,
    batch: int = 1,
    dtype_bytes: float = 2.0,
    index_bytes: float = 4.0,
    include_conversion: bool = True,
    irregular_penalty: float = 2.5,
) -> OpWork:
    """Roofline footprint of CSR SpMV at neuron granularity.

    When ``include_conversion`` (the *dynamic*-sparsity case of real
    sparse-predicted inference), the dense->CSR conversion (full matrix
    read + CSR write) is charged on every call — this is why generic sparse
    libraries lose badly in PowerInfer's scenario (Section 5.4).  With
    ``include_conversion=False`` the matrix is pre-converted (static weight
    sparsity, the setting of the Figure 16 microbenchmark) and only the
    SpMV runs; its per-element traffic still carries column indices and an
    ``irregular_penalty`` for gather-style access, which is what pushes the
    CSR-vs-dense crossover to ~87% sparsity on CPU.
    """
    nnz = n_active * n
    spmv = OpWork(
        flops=2.0 * nnz * batch,
        bytes_read=(nnz * (dtype_bytes + index_bytes) + batch * n * 4.0)
        * irregular_penalty
        + (m + 1) * 8.0,
        bytes_written=batch * m * 4.0,
    )
    if not include_conversion:
        return spmv
    conversion = OpWork(
        flops=0.0,
        bytes_read=m * n * dtype_bytes,
        bytes_written=nnz * (dtype_bytes + index_bytes),
    )
    return spmv + conversion


def pit_gemv(
    weight: np.ndarray, x: np.ndarray, active_rows: np.ndarray
) -> np.ndarray:
    """PIT-style: permute active rows into a dense micro-tile, compute dense.

    Numerically identical to the neuron-aware gather; kept separate because
    its cost model includes the permutation-table maintenance and because
    the original PIT system is GPU-only (paper Section 5.4).
    """
    tile = weight[active_rows]  # permutation gather
    return x @ tile.T


def pit_work(
    n_active: int, neuron_dim: int, batch: int = 1, dtype_bytes: float = 2.0
) -> OpWork:
    """PIT footprint: active rows once, plus permutation-table traffic."""
    table_bytes = n_active * 8.0  # source/destination row mapping
    return OpWork(
        flops=2.0 * n_active * neuron_dim * batch,
        bytes_read=n_active * neuron_dim * dtype_bytes
        + batch * neuron_dim * 4.0
        + table_bytes,
        bytes_written=batch * n_active * 4.0 + table_bytes,
    )
