"""Benchmark baseline harness: record a canonical suite, gate regressions.

``repro bench-baseline`` runs a canonical benchmark suite — end-to-end
tokens/s per engine x machine, continuous-serving TTFT/TBT percentiles,
fault-tolerance goodput — and writes every metric (with its orientation
and an attribution fingerprint per end-to-end config) to
``BENCH_baseline.json``.  ``repro bench-check`` re-runs the same suite,
compares each metric against the committed baseline under a per-metric
relative tolerance, prints an **attribution-aware diff** — a regressed
decode rate is explained by which roofline component's share grew — and
exits non-zero on any regression.  Everything here is a deterministic
simulation, so out-of-tolerance drift means the *code* changed behaviour,
not the machine running CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.analysis.attribution import critical_path, decompose
from repro.bench.runner import make_engine
from repro.hardware.events import EventSimulator
from repro.telemetry.power import fleet_energy, fleet_generated_tokens, request_energy

__all__ = [
    "SCHEMA_VERSION",
    "MetricRecord",
    "BenchDiff",
    "run_suite",
    "write_baseline",
    "load_baseline",
    "check_against_baseline",
    "format_diff",
]

SCHEMA_VERSION = 1

# Relative tolerance for the wall-clock simulator-throughput metrics.
# These measure how fast the *simulator* chews through events on the
# machine at hand, so they get a generous band: only a catastrophic
# slowdown (an order-of-magnitude event-loop regression) should trip it,
# never scheduler jitter or a slower CI runner.
SIMPERF_TOLERANCE = 0.9

# Relative tolerance for the J/token energy metrics.  Energy is a
# derived quantity (schedule timing x power model), so it inherits drift
# from both; 5% matches the suite default but is pinned explicitly so
# the baseline records the intended band next to the metric.
ENERGY_TOLERANCE = 0.05

# Canonical end-to-end configurations: (engine, model, machine, dtype).
# One big-model FP16 config per flagship machine comparison and one
# small-model INT4 config matching the serving/fault studies.
E2E_CONFIGS_FULL = (
    ("powerinfer", "opt-30b", "pc-high", "fp16"),
    ("llama.cpp", "opt-30b", "pc-high", "fp16"),
    ("powerinfer", "opt-6.7b", "pc-low", "int4"),
    ("llama.cpp", "opt-6.7b", "pc-low", "int4"),
)
E2E_CONFIGS_QUICK = (
    ("powerinfer", "opt-6.7b", "pc-low", "int4"),
    ("llama.cpp", "opt-6.7b", "pc-low", "int4"),
)
E2E_INPUT_LEN = 64
E2E_OUTPUT_LEN = 128

SERVING_N_REQUESTS = {"full": 48, "quick": 12}


def _e2e_key(engine: str, model: str, machine: str, dtype: str) -> str:
    return f"e2e/{engine}/{model}/{machine}/{dtype}"


@dataclass(frozen=True)
class MetricRecord:
    """One benchmarked scalar plus the direction that counts as better.

    ``tolerance`` overrides the suite-wide relative tolerance for this
    metric alone — wall-clock throughput metrics (``simperf/*``) carry a
    generous one because they measure the CI machine, not the model.
    """

    value: float
    higher_is_better: bool
    tolerance: float | None = None

    def as_dict(self) -> dict:
        record = {"value": self.value, "higher_is_better": self.higher_is_better}
        if self.tolerance is not None:
            record["tolerance"] = self.tolerance
        return record


def _metric(
    value: float, higher_is_better: bool, tolerance: float | None = None
) -> MetricRecord:
    return MetricRecord(float(value), higher_is_better, tolerance)


def _attribution_fingerprint(engine) -> dict:
    """Component shares + bottleneck of one decode iteration (the diff key)."""
    from repro.engine.base import RESOURCES

    ctx = E2E_INPUT_LEN + E2E_OUTPUT_LEN // 2
    tasks = engine.iteration_tasks(ctx, 1, 1)
    result = EventSimulator(list(RESOURCES)).run(tasks)
    deco = decompose(result)
    cp = critical_path(tasks, result)
    return {
        "shares": deco.shares(),
        "critical_resource": cp.gating_resource(),
        "makespan_s": result.makespan,
    }


def run_suite(quick: bool = False) -> dict:
    """Run the canonical suite; returns the baseline document (pre-JSON).

    ``quick`` shrinks the suite for tests and local iteration: the small
    INT4 end-to-end configs, a shorter request stream, and no chaos run.
    """
    suite = "quick" if quick else "full"
    metrics: dict[str, MetricRecord] = {}
    attribution: dict[str, dict] = {}

    # -- end-to-end token rates ------------------------------------------------
    configs = E2E_CONFIGS_QUICK if quick else E2E_CONFIGS_FULL
    for engine_name, model, machine, dtype in configs:
        engine = make_engine(engine_name, model, machine, dtype)
        result = engine.simulate_request(E2E_INPUT_LEN, E2E_OUTPUT_LEN)
        key = _e2e_key(engine_name, model, machine, dtype)
        decode_tps = E2E_OUTPUT_LEN / result.decode_time
        metrics[f"{key}/decode_tps"] = _metric(decode_tps, True)
        metrics[f"{key}/total_tps"] = _metric(result.tokens_per_second, True)
        metrics[f"{key}/prompt_s"] = _metric(result.prompt_time, False)
        energy = request_energy(engine, E2E_INPUT_LEN, E2E_OUTPUT_LEN)
        energy_key = f"energy/{engine_name}/{model}/{machine}/{dtype}"
        metrics[f"{energy_key}/j_per_token"] = _metric(
            energy.j_per_token, False, tolerance=ENERGY_TOLERANCE
        )
        attribution[key] = _attribution_fingerprint(engine)

    # -- continuous-batching serving percentiles -------------------------------
    from repro.bench.fault_tolerance import (
        DEADLINE_S,
        DEFAULT_SLO,
        KV_BUDGET_BYTES,
        MACHINE,
        MAX_BATCH,
        MODEL,
        RATE_RPS,
        SEED,
    )
    from repro.bench.fault_tolerance import DTYPE as FT_DTYPE
    from repro.serving import poisson_arrivals, simulate_continuous_serving
    from repro.workloads import CHATGPT_PROMPTS

    engine = make_engine("powerinfer", MODEL, MACHINE, FT_DTYPE)
    requests = poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=RATE_RPS,
        n_requests=SERVING_N_REQUESTS[suite],
        rng=np.random.default_rng(SEED),
        deadline=DEADLINE_S,
    )
    t0 = time.perf_counter()  # repro-lint: disable=wall-clock -- measures simulator throughput, not model time
    report = simulate_continuous_serving(
        engine,
        requests,
        policy="chunked",
        max_batch=MAX_BATCH,
        kv_budget_bytes=KV_BUDGET_BYTES,
        max_prefill_tokens=32,
    )
    serving_wall_s = time.perf_counter() - t0  # repro-lint: disable=wall-clock -- measures simulator throughput, not model time
    metrics["simperf/serving_iterations_per_s"] = _metric(
        report.n_iterations / max(serving_wall_s, 1e-9),
        True,
        tolerance=SIMPERF_TOLERANCE,
    )
    metrics["serving/ttft_p50_s"] = _metric(report.ttft_percentile(50), False)
    metrics["serving/ttft_p95_s"] = _metric(report.ttft_percentile(95), False)
    metrics["serving/tbt_p50_s"] = _metric(report.tbt_percentile(50), False)
    metrics["serving/tbt_p95_s"] = _metric(report.tbt_percentile(95), False)
    metrics["serving/goodput_rps"] = _metric(report.goodput(DEFAULT_SLO), True)
    metrics["serving/tokens_per_s"] = _metric(report.tokens_per_second, True)

    # -- fault-tolerance goodput (chaos run, full suite only) ------------------
    if not quick:
        from repro.bench.fault_tolerance import run_fault_tolerance

        for row in run_fault_tolerance(quick=True):
            prefix = f"faults/{row['server']}"
            metrics[f"{prefix}/slo_attainment"] = _metric(row["slo_attainment"], True)
            metrics[f"{prefix}/completed"] = _metric(row["completed"], True)

    # -- fleet chaos per router policy (full suite only) -----------------------
    if not quick:
        from repro.bench.fleet_chaos import build_fleet, fleet_requests, run_fleet_chaos

        for row in run_fleet_chaos():
            condition = row["faults"] if row["failover"] else "nofailover"
            prefix = f"fleet/{row['policy']}/{condition}"
            metrics[f"{prefix}/goodput_rps"] = _metric(row["goodput_rps"], True)
            metrics[f"{prefix}/ttft_p99_s"] = _metric(row["ttft_p99_s"], False)
            metrics[f"{prefix}/availability"] = _metric(row["availability"], True)

        t0 = time.perf_counter()  # repro-lint: disable=wall-clock -- measures simulator throughput, not model time
        fleet_result = build_fleet().run(fleet_requests())
        fleet_wall_s = time.perf_counter() - t0  # repro-lint: disable=wall-clock -- measures simulator throughput, not model time
        fleet_iterations = sum(
            rep.report.n_iterations for rep in fleet_result.replicas
        )
        metrics["simperf/fleet_iterations_per_s"] = _metric(
            fleet_iterations / max(fleet_wall_s, 1e-9),
            True,
            tolerance=SIMPERF_TOLERANCE,
        )

        # Fleet-wide J/token on the canonical chaos scenario.  Needs a
        # traced run (per-replica spans feed the energy ledger), so it is
        # a separate run from the untraced simperf one above.
        from repro.bench.fleet_chaos import DEFAULT_SLO, default_fleet_monitor
        from repro.telemetry.fleet import FleetTracer

        fleet_tracer = FleetTracer(monitor=default_fleet_monitor(), slo=DEFAULT_SLO)
        traced_result = build_fleet(tracer=fleet_tracer).run(fleet_requests())
        fleet_joules = fleet_energy(traced_result, fleet_tracer)
        tokens = fleet_generated_tokens(traced_result)
        metrics["fleet/j_per_token"] = _metric(
            fleet_joules.total_joules / max(tokens, 1),
            False,
            tolerance=ENERGY_TOLERANCE,
        )

    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "metrics": {name: rec.as_dict() for name, rec in sorted(metrics.items())},
        "attribution": attribution,
    }


def write_baseline(path: Path | str, quick: bool = False) -> dict:
    """Run the suite and persist the baseline document; returns it."""
    document = run_suite(quick=quick)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def load_baseline(path: Path | str) -> dict:
    document = json.loads(Path(path).read_text())
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"baseline schema {schema!r} not supported (expected {SCHEMA_VERSION})"
        )
    return document


@dataclass
class BenchDiff:
    """Outcome of one bench-check run against a baseline."""

    rows: list[dict]
    regressions: list[dict]
    attribution_notes: list[str]
    tolerance: float

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "rows": self.rows,
            "regressions": self.regressions,
            "attribution_notes": self.attribution_notes,
        }


def _share_diff_note(metric: str, old_attr: Mapping, new_attr: Mapping) -> str | None:
    """The attribution-aware explanation for one regressed e2e metric."""
    old_shares = old_attr.get("shares", {})
    new_shares = new_attr.get("shares", {})
    if not old_shares or not new_shares:
        return None
    grew = max(
        new_shares,
        key=lambda c: new_shares.get(c, 0.0) - old_shares.get(c, 0.0),
    )
    delta = new_shares.get(grew, 0.0) - old_shares.get(grew, 0.0)
    note = (
        f"{metric}: {grew} share grew "
        f"{old_shares.get(grew, 0.0):.0%} -> {new_shares.get(grew, 0.0):.0%}"
    )
    if old_attr.get("critical_resource") != new_attr.get("critical_resource"):
        note += (
            f"; critical resource moved {old_attr.get('critical_resource')}"
            f" -> {new_attr.get('critical_resource')}"
        )
    return note if delta > 0.0 else note + " (shares roughly unchanged)"


def check_against_baseline(
    baseline: Mapping, current: Mapping, tolerance: float = 0.05
) -> BenchDiff:
    """Compare a fresh suite run against a recorded baseline.

    A metric regresses when it moves beyond ``tolerance`` (relative) in
    its *bad* direction; improvements and within-tolerance noise pass.
    A baseline record carrying its own ``tolerance`` (wall-clock
    throughput metrics) overrides the suite-wide one for that metric.
    Metrics present in only one document are reported as regressions too —
    a silently dropped benchmark must not look like a pass.
    """
    base_metrics: dict = dict(baseline.get("metrics", {}))
    new_metrics: dict = dict(current.get("metrics", {}))
    rows: list[dict] = []
    regressions: list[dict] = []
    notes: list[str] = []

    for name in sorted(set(base_metrics) | set(new_metrics)):
        old = base_metrics.get(name)
        new = new_metrics.get(name)
        if old is None or new is None:
            row = {
                "metric": name,
                "baseline": old["value"] if old else None,
                "current": new["value"] if new else None,
                "change": None,
                "status": "missing-in-current" if new is None else "missing-in-baseline",
            }
            rows.append(row)
            regressions.append(row)
            continue
        old_v, new_v = old["value"], new["value"]
        higher = bool(old.get("higher_is_better", True))
        metric_tol = float(old.get("tolerance", tolerance))
        denom = abs(old_v) if old_v else 1.0
        rel = (new_v - old_v) / denom
        bad = -rel if higher else rel
        status = (
            "regression"
            if bad > metric_tol
            else ("improved" if bad < -metric_tol else "ok")
        )
        row = {
            "metric": name,
            "baseline": old_v,
            "current": new_v,
            "change": rel,
            "status": status,
        }
        rows.append(row)
        if status == "regression":
            regressions.append(row)
            if name.startswith("e2e/"):
                key = name.rsplit("/", 1)[0]
                note = _share_diff_note(
                    name,
                    baseline.get("attribution", {}).get(key, {}),
                    current.get("attribution", {}).get(key, {}),
                )
                if note:
                    notes.append(note)

    return BenchDiff(
        rows=rows, regressions=regressions, attribution_notes=notes, tolerance=tolerance
    )


def format_diff(diff: BenchDiff) -> str:
    """Human-readable bench-check report (also the CI artifact body)."""
    from repro.bench.report import format_table

    display = [
        {
            "metric": r["metric"],
            "baseline": r["baseline"] if r["baseline"] is not None else "-",
            "current": r["current"] if r["current"] is not None else "-",
            "change": f"{r['change']:+.1%}" if r["change"] is not None else "-",
            "status": r["status"],
        }
        for r in diff.rows
    ]
    lines = [format_table(display, title=f"bench-check (tolerance {diff.tolerance:.0%})")]
    if diff.attribution_notes:
        lines.append("")
        lines.append("attribution:")
        lines.extend(f"  {note}" for note in diff.attribution_notes)
    lines.append("")
    if diff.ok:
        lines.append("OK: no metric regressed beyond tolerance")
    else:
        lines.append(f"FAIL: {len(diff.regressions)} metric(s) regressed")
    return "\n".join(lines)
