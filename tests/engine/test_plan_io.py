"""Tests for deployment-plan persistence."""

import numpy as np
import pytest

from repro.engine.plan_io import load_plan, save_plan
from repro.engine.powerinfer import PowerInferEngine


class TestRoundTrip:
    def test_arrays_and_header_preserved(self, mini_plan, tmp_path):
        path = tmp_path / "plan.npz"
        save_plan(mini_plan, path)
        loaded = load_plan(path)
        assert loaded.model == mini_plan.model
        assert loaded.machine == mini_plan.machine
        assert loaded.dtype == mini_plan.dtype
        assert loaded.expected_context == mini_plan.expected_context
        for a, b in zip(loaded.mlp_gpu_masks, mini_plan.mlp_gpu_masks):
            assert np.array_equal(a, b)
        for a, b in zip(loaded.mlp_probs, mini_plan.mlp_probs):
            assert np.allclose(a, b)
        assert loaded.predictor_bytes == pytest.approx(mini_plan.predictor_bytes)

    def test_loaded_plan_simulates_identically(self, mini_plan, tmp_path):
        path = tmp_path / "plan.npz"
        save_plan(mini_plan, path)
        loaded = load_plan(path)
        original = PowerInferEngine(mini_plan).simulate_request(8, 16)
        restored = PowerInferEngine(loaded).simulate_request(8, 16)
        assert restored.tokens_per_second == pytest.approx(
            original.tokens_per_second
        )

    def test_int4_plan_round_trips(self, mini_model, mini_machine, tmp_path):
        from repro.core.pipeline import build_plan
        from repro.quant.formats import INT4

        plan = build_plan(mini_model, mini_machine, INT4, policy="none")
        path = tmp_path / "plan_int4.npz"
        save_plan(plan, path)
        assert load_plan(path).dtype.name == "int4"


def _resave(path, mutate):
    """Load a saved plan archive, apply ``mutate(arrays, header)``, resave."""
    import json

    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    header = json.loads(bytes(arrays["header"]).decode())
    mutate(arrays, header)
    arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


class TestValidation:
    @pytest.fixture
    def saved(self, mini_plan, tmp_path):
        path = tmp_path / "plan.npz"
        save_plan(mini_plan, path)
        return path

    def test_bad_version_rejected(self, saved):
        def mutate(arrays, header):
            header["version"] = 999

        _resave(saved, mutate)
        with pytest.raises(ValueError, match="version"):
            load_plan(saved)

    def test_missing_header_rejected(self, saved):
        with np.load(saved) as data:
            arrays = {k: data[k] for k in data.files if k != "header"}
        np.savez(saved, **arrays)
        with pytest.raises(ValueError, match="header"):
            load_plan(saved)

    def test_corrupt_header_rejected(self, saved):
        with np.load(saved) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["header"] = np.frombuffer(b"{not json", dtype=np.uint8)
        np.savez(saved, **arrays)
        with pytest.raises(ValueError, match="corrupt"):
            load_plan(saved)

    def test_missing_array_rejected(self, saved):
        with np.load(saved) as data:
            arrays = {k: data[k] for k in data.files if k != "mlp_mask_0"}
        np.savez(saved, **arrays)
        with pytest.raises(ValueError, match="mlp_mask_0"):
            load_plan(saved)

    def test_shape_mismatch_rejected(self, saved):
        def mutate(arrays, header):
            arrays["mlp_probs_0"] = arrays["mlp_probs_0"][:-1]
            # Keep the checksum honest so shape is the error that fires.
            import zlib

            header["checksums"]["mlp_probs_0"] = zlib.crc32(
                np.ascontiguousarray(arrays["mlp_probs_0"]).tobytes()
            )

        _resave(saved, mutate)
        with pytest.raises(ValueError, match="shape"):
            load_plan(saved)

    def test_bit_flip_fails_checksum(self, saved):
        def mutate(arrays, header):
            probs = arrays["mlp_probs_0"].copy()
            probs[0] += 0.25
            arrays["mlp_probs_0"] = probs

        _resave(saved, mutate)
        with pytest.raises(ValueError, match="checksum"):
            load_plan(saved)

    def test_version1_file_without_checksums_still_loads(self, saved):
        def mutate(arrays, header):
            header["version"] = 1
            del header["checksums"]

        _resave(saved, mutate)
        load_plan(saved)  # legacy format: no integrity data to verify

    def test_version2_file_without_checksums_rejected(self, saved):
        def mutate(arrays, header):
            del header["checksums"]

        _resave(saved, mutate)
        with pytest.raises(ValueError, match="checksum"):
            load_plan(saved)

    def test_not_a_plan_file_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.arange(4))
        with pytest.raises(ValueError, match="header"):
            load_plan(path)
