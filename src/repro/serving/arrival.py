"""Request arrival processes for serving simulations.

The paper's target setting is a local deployment serving one user's
requests with low latency (Section 1).  To study that regime — and how far
a machine can be pushed before queueing delay dominates — we model request
streams as a Poisson process whose prompt/output lengths come from the
:mod:`repro.workloads.prompts` distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.prompts import PromptWorkload

__all__ = ["Request", "poisson_arrivals"]


@dataclass(frozen=True)
class Request:
    """One serving request."""

    request_id: int
    arrival_time: float
    input_len: int
    output_len: int


def poisson_arrivals(
    workload: PromptWorkload,
    rate: float,
    n_requests: int,
    rng: np.random.Generator,
    output_lengths: tuple[int, ...] = (8, 128, 512),
    output_weights: tuple[float, ...] = (0.2, 0.6, 0.2),
) -> list[Request]:
    """Sample a Poisson request stream.

    Args:
        workload: Prompt-length distribution.
        rate: Mean arrivals per second.
        n_requests: Stream length.
        rng: Seeded generator.
        output_lengths: Possible response lengths (paper's 8/128/512).
        output_weights: Mixture weights over ``output_lengths``.

    Returns:
        Requests ordered by arrival time.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if len(output_lengths) != len(output_weights):
        raise ValueError("output_lengths and output_weights must align")
    weights = np.asarray(output_weights, dtype=np.float64)
    weights = weights / weights.sum()

    gaps = rng.exponential(1.0 / rate, size=n_requests)
    arrivals = np.cumsum(gaps)
    inputs = workload.sample_input_lengths(n_requests, rng)
    outputs = rng.choice(output_lengths, size=n_requests, p=weights)
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            input_len=int(inputs[i]),
            output_len=int(outputs[i]),
        )
        for i in range(n_requests)
    ]
