"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "print_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[dict[str, Any]], title: str = "") -> str:
    """Render dict rows as an aligned ASCII table (keys become headers)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    table = [[_fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(line[i]) for line in table)) for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for line in table:
        out.append(" | ".join(cell.rjust(w) for cell, w in zip(line, widths)))
    return "\n".join(out)


def print_table(rows: Sequence[dict[str, Any]], title: str = "") -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, title))
