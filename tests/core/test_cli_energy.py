"""CLI coverage for the energy subcommand and explain-request energy output."""

import json

from repro.cli import main


class TestEnergyCommand:
    def test_request_table_ranks_engines(self, capsys, tmp_path):
        out = tmp_path / "energy.json"
        code = main(["energy", "--json", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "j_per_token" in text
        assert "powerinfer" in text
        doc = json.loads(out.read_text())
        assert doc["powerinfer"]["j_per_token"] > 0.0
        assert doc["powerinfer"]["grams_co2"] > 0.0

    def test_carbon_intensity_scales_carbon_only(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        green = tmp_path / "green.json"
        assert main(["energy", "--json", str(base)]) == 0
        assert main(["energy", "--carbon-intensity", "40", "--json", str(green)]) == 0
        b = json.loads(base.read_text())["powerinfer"]
        g = json.loads(green.read_text())["powerinfer"]
        assert g["total_joules"] == b["total_joules"]
        assert g["grams_co2"] * 10 == b["grams_co2"] * 1.0

    def test_whatif_prints_perf_per_watt(self, capsys):
        assert main(["energy", "--whatif"]) == 0
        assert "perf_per_watt_gain" in capsys.readouterr().out

    def test_fleet_mode_reconciles_and_writes_artifacts(self, capsys, tmp_path):
        out = tmp_path / "fleet_energy.json"
        ts = tmp_path / "watts.jsonl"
        code = main(
            [
                "energy", "--fleet", "--requests", "8",
                "--json", str(out), "--timeseries", str(ts),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "reconciliation OK" in text
        assert "J/token" in text
        doc = json.loads(out.read_text())
        assert doc["reconciliation_ok"] is True
        assert doc["j_per_token"] > 0.0
        assert len(doc["replicas"]) == 3
        lanes = {json.loads(line)["series"] for line in ts.read_text().splitlines()}
        assert "fleet/watts" in lanes
        assert any(name.endswith("/gpu_watts") for name in lanes)


class TestExplainRequestEnergy:
    def test_text_timeline_carries_joules_column(self, capsys):
        assert main(["explain-request", "1", "--requests", "8"]) == 0
        text = capsys.readouterr().out
        assert "fleet energy in flight" in text
        assert " J]" in text

    def test_format_json_document(self, capsys):
        assert main(["explain-request", "1", "--requests", "8", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["energy"]["fleet_total_joules"] > 0.0
        assert all("fleet_joules" in entry for entry in doc["timeline"])
        joules = [entry["fleet_joules"] for entry in doc["timeline"]]
        assert joules == sorted(joules)
