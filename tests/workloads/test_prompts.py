"""Tests for serving workload distributions."""

import numpy as np
import pytest

from repro.workloads.prompts import (
    ALPACA,
    CHATGPT_PROMPTS,
    PAPER_OUTPUT_LENGTHS,
    PromptWorkload,
    sample_requests,
)


class TestInputLengths:
    def test_paper_range_respected(self, rng):
        # Section 8.2: prompts sampled in the 8..128 range.
        lengths = CHATGPT_PROMPTS.sample_input_lengths(500, rng)
        assert lengths.min() >= 8
        assert lengths.max() <= 128

    def test_alpaca_longer_than_chatgpt(self, rng):
        chat = CHATGPT_PROMPTS.sample_input_lengths(500, rng).mean()
        alpaca = ALPACA.sample_input_lengths(500, rng).mean()
        assert alpaca > chat

    def test_deterministic(self):
        a = CHATGPT_PROMPTS.sample_input_lengths(10, np.random.default_rng(1))
        b = CHATGPT_PROMPTS.sample_input_lengths(10, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            CHATGPT_PROMPTS.sample_input_lengths(0, rng)


class TestRequests:
    def test_paper_output_lengths(self):
        assert PAPER_OUTPUT_LENGTHS == (8, 128, 512)

    def test_sample_requests_pairs(self, rng):
        reqs = sample_requests(ALPACA, 10, output_len=128, rng=rng)
        assert len(reqs) == 10
        for inp, out in reqs:
            assert 8 <= inp <= 128
            assert out == 128

    def test_invalid_output_len(self, rng):
        with pytest.raises(ValueError):
            sample_requests(ALPACA, 3, output_len=0, rng=rng)

    def test_custom_workload_clamping(self, rng):
        w = PromptWorkload(name="w", mean_input=1000, min_input=4, max_input=16)
        lengths = w.sample_input_lengths(50, rng)
        assert lengths.max() <= 16
