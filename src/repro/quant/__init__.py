"""Quantization formats (FP16/INT4) and a numpy INT4 group quantizer."""

from repro.quant.formats import DTYPE_PRESETS, FP16, FP32, INT4, INT8, DType
from repro.quant.int4 import (
    QuantizedTensor,
    dequantize_int4,
    quantization_error,
    quantize_int4,
)

__all__ = [
    "DTYPE_PRESETS",
    "DType",
    "FP16",
    "FP32",
    "INT4",
    "INT8",
    "QuantizedTensor",
    "dequantize_int4",
    "quantization_error",
    "quantize_int4",
]
