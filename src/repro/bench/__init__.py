"""Experiment drivers: one module per paper table/figure (see DESIGN.md)."""

from repro.bench.ablations import (
    run_ablation_impact_weighting,
    run_ablation_predictor_budget,
    run_ablation_selective_sync,
    run_ablation_solver_batching,
    run_ablation_sync_overhead,
    run_prompt_heavy,
)
from repro.bench.continuous_batching import run_continuous_batching
from repro.bench.end_to_end import run_end_to_end, run_fig10, run_fig11, run_fig13
from repro.bench.fault_tolerance import default_fault_schedule, run_fault_tolerance
from repro.bench.fleet_chaos import (
    build_fleet,
    default_crash_schedule,
    fleet_requests,
    run_fleet_chaos,
)
from repro.bench.fig04 import run_fig04
from repro.bench.fig05 import cdf_series, run_fig05
from repro.bench.fig06 import run_fig06
from repro.bench.fig09 import run_fig09_modeled, run_fig09_trained
from repro.bench.fig12 import run_fig12
from repro.bench.fig14 import run_fig14
from repro.bench.fig15 import run_fig15
from repro.bench.fig16 import run_fig16_measured, run_fig16_modeled
from repro.bench.fig17 import run_fig17
from repro.bench.fig18 import run_fig18
from repro.bench.paper_reference import PAPER_ANCHORS, anchor
from repro.bench.report import format_table, print_table
from repro.bench.runner import ENGINE_CLASSES, cached_plan, make_engine
from repro.bench.table2 import build_sparse_system, run_table2

__all__ = [
    "ENGINE_CLASSES",
    "PAPER_ANCHORS",
    "anchor",
    "run_ablation_impact_weighting",
    "run_ablation_predictor_budget",
    "run_ablation_selective_sync",
    "run_ablation_solver_batching",
    "run_ablation_sync_overhead",
    "run_prompt_heavy",
    "build_fleet",
    "build_sparse_system",
    "cached_plan",
    "cdf_series",
    "default_crash_schedule",
    "default_fault_schedule",
    "fleet_requests",
    "run_continuous_batching",
    "run_fault_tolerance",
    "run_fleet_chaos",
    "format_table",
    "make_engine",
    "print_table",
    "run_end_to_end",
    "run_fig04",
    "run_fig05",
    "run_fig06",
    "run_fig09_modeled",
    "run_fig09_trained",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16_measured",
    "run_fig16_modeled",
    "run_fig17",
    "run_fig18",
    "run_table2",
]
