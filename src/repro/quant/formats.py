"""Parameter storage formats and their memory footprints.

The paper evaluates FP16 models (Figures 10-12) and INT4-quantized models
(Figure 13).  For memory accounting — the quantity the placement solver and
offload baselines actually consume — a format is fully described by its
bytes-per-parameter, including any group-quantization metadata (scales and
zero points), matching the GGML-style Q4 layouts used by llama.cpp.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DType", "FP32", "FP16", "INT8", "INT4", "DTYPE_PRESETS"]


@dataclass(frozen=True)
class DType:
    """A parameter storage format.

    Attributes:
        name: Format identifier (``"fp16"``, ``"int4"``, ...).
        bits: Bits per parameter payload.
        group_size: Parameters sharing one scale/zero block (0 = no groups).
        group_overhead_bytes: Metadata bytes per group (scale + zero point).
    """

    name: str
    bits: int
    group_size: int = 0
    group_overhead_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("bits must be positive")
        if self.group_size < 0:
            raise ValueError("group_size must be non-negative")
        if self.group_overhead_bytes < 0:
            raise ValueError("group_overhead_bytes must be non-negative")

    @property
    def bytes_per_param(self) -> float:
        """Average storage bytes per parameter, metadata included."""
        base = self.bits / 8.0
        if self.group_size:
            base += self.group_overhead_bytes / self.group_size
        return base

    def nbytes(self, num_params: float) -> float:
        """Storage footprint of ``num_params`` parameters in bytes."""
        if num_params < 0:
            raise ValueError("num_params must be non-negative")
        return num_params * self.bytes_per_param


FP32 = DType(name="fp32", bits=32)
FP16 = DType(name="fp16", bits=16)
INT8 = DType(name="int8", bits=8, group_size=32, group_overhead_bytes=2.0)
# llama.cpp Q4-style: 32-param groups with one fp16 scale + one fp16 zero.
INT4 = DType(name="int4", bits=4, group_size=32, group_overhead_bytes=4.0)

DTYPE_PRESETS = {d.name: d for d in (FP32, FP16, INT8, INT4)}
