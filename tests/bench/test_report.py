"""Tests for the table formatter and bench runner plumbing."""

import json
import math

import pytest

from repro.bench.report import format_table, json_safe, save_rows, write_rows_json
from repro.bench.runner import ENGINE_CLASSES, cached_plan, make_engine


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        rows = [
            {"name": "a", "value": 1.25},
            {"name": "bbbb", "value": 100.0},
        ]
        text = format_table(rows, "Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All rows same width.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_float_formatting(self):
        text = format_table([{"x": 0.00123, "y": 123456.0, "z": 1.5}])
        assert "0.00123" in text
        assert "1.23e+05" in text or "123456" in text.replace(",", "")
        assert "1.50" in text

    def test_missing_keys_render_blank(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert text  # no KeyError


class TestJsonOutput:
    def test_json_safe_scrubs_non_finite(self):
        value = {"a": float("nan"), "b": [1.0, float("inf")], "c": "x"}
        assert json_safe(value) == {"a": None, "b": [1.0, None], "c": "x"}

    def test_write_rows_json(self, tmp_path):
        path = tmp_path / "t.json"
        rows = [{"x": 1.0, "y": math.nan}]
        write_rows_json(path, rows, title="T")
        doc = json.loads(path.read_text())
        assert doc == {"title": "T", "rows": [{"x": 1.0, "y": None}]}

    def test_save_rows_emits_txt_and_json(self, tmp_path):
        rows = [{"engine": "powerinfer", "tps": 20.8}]
        text = save_rows(tmp_path, "fig", rows, title="Figure")
        assert (tmp_path / "fig.txt").read_text() == text + "\n"
        doc = json.loads((tmp_path / "fig.json").read_text())
        assert doc["title"] == "Figure"
        assert doc["rows"] == rows


class TestRunner:
    def test_engine_registry_complete(self):
        assert set(ENGINE_CLASSES) == {
            "powerinfer",
            "llama.cpp",
            "flexgen",
            "dejavu-um",
            "vllm",
            "+PO",
        }

    def test_cached_plan_is_cached(self):
        a = cached_plan("opt-6.7b", "pc-high", "fp16", "none", 0)
        b = cached_plan("opt-6.7b", "pc-high", "fp16", "none", 0)
        assert a is b

    def test_make_engine_unknown_name(self):
        with pytest.raises(KeyError):
            make_engine("ghost-engine", "opt-6.7b", "pc-high")

    def test_make_engine_builds(self):
        engine = make_engine("llama.cpp", "opt-6.7b", "pc-high")
        assert engine.name == "llama.cpp"
