"""Shared helpers for the benchmark suite.

Every bench runs its experiment exactly once through pytest-benchmark
(``pedantic(rounds=1)`` — the experiments are deterministic simulations,
not microbenchmarks) and records the resulting table under
``benchmarks/results/`` so EXPERIMENTS.md can cite the exact output.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.report import format_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_rows():
    """Fixture: ``record_rows(name, rows, title)`` writes and prints a table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, rows: list[dict], title: str = "") -> None:
        text = format_table(rows, title or name)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
