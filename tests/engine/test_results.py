"""Tests for request-result containers."""

import pytest

from repro.engine.results import RequestResult


@pytest.fixture
def result():
    return RequestResult(
        engine="powerinfer",
        model="opt-30b",
        input_len=64,
        output_len=128,
        batch=2,
        prompt_time=1.0,
        decode_time=3.0,
        breakdown={"gpu-neuron": 2.0, "transfer": 1.0, "cpu-neuron": 1.0},
        gpu_load_share=0.7,
    )


class TestMetrics:
    def test_total_time(self, result):
        assert result.total_time == 4.0

    def test_tokens_per_second_counts_batch(self, result):
        # Paper metric: generated tokens / end-to-end time, aggregated
        # over the batch.
        assert result.tokens_per_second == pytest.approx(128 * 2 / 4.0)

    def test_decode_latency(self, result):
        assert result.decode_latency == pytest.approx(3.0 / 128)

    def test_zero_time_guard(self):
        r = RequestResult("e", "m", 1, 1, 1, prompt_time=0.0, decode_time=0.0)
        assert r.tokens_per_second == 0.0

    def test_zero_output_guard(self):
        r = RequestResult("e", "m", 1, 0, 1, prompt_time=1.0, decode_time=0.0)
        assert r.decode_latency == 0.0


class TestBreakdown:
    def test_shares_sum_to_one(self, result):
        shares = result.breakdown_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["gpu-neuron"] == pytest.approx(0.5)

    def test_empty_breakdown(self):
        r = RequestResult("e", "m", 1, 1, 1, prompt_time=1.0, decode_time=1.0)
        assert r.breakdown_shares() == {}
