"""One fleet replica: a continuous server plus its fault/health context.

A replica wraps an independent :class:`~repro.serving.continuous
.ContinuousServer` (its own engine over its own
:class:`~repro.hardware.spec.MachineSpec`, its own KV pool and queues)
driven through an external-mode :class:`~repro.serving.continuous
.ServerSession` so the fleet router can interleave N replicas on one
simulated clock.

The replica keeps *two* views of its fault schedule:

* ``faults`` — the full per-replica schedule, including the fleet-level
  kinds (``replica-crash`` / ``replica-recover`` / ``link-degrade``).
  The router reads crash windows (for health detection and drains) and
  link factors (for KV-transfer pricing) from it.
* the server runs under ``faults.machine_view()`` — crashes become
  device stalls and recovery warm-up becomes a GPU throttle, so *no
  iteration ever crosses a crash start*: the existing stall-preemption
  machinery aborts in-flight work at the crash instant and the schedule
  validator's stall-overlap check structurally proves that a crashed
  replica served nothing.

Health here is what the *router detected* via heartbeats — distinct from
ground truth (``faults.is_crashed``): a crash shorter than the detection
window is never noticed and never drained, exactly like a real fleet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.faults import FaultSchedule
from repro.serving.continuous import ContinuousServer, ServerSession
from repro.units import Bytes, Ratio, Seconds

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.engine.base import PerfEngine
    from repro.telemetry.tracer import Tracer

__all__ = ["Replica", "ReplicaRole"]


class ReplicaRole:
    """What work a replica accepts in a disaggregated fleet."""

    BOTH = "both"
    PREFILL = "prefill"
    DECODE = "decode"

    ALL = (BOTH, PREFILL, DECODE)


class Replica:
    """A named continuous server participating in a fleet.

    Attributes:
        name: Replica identifier (unique within the fleet).
        engine: The replica's performance engine.
        faults: Full per-replica fault schedule (fleet kinds included);
            ``None`` for a healthy replica.
        role: A :class:`ReplicaRole` value — ``"both"`` serves whole
            requests; ``"prefill"``/``"decode"`` split them in a
            disaggregated fleet.
        server: The wrapped :class:`ContinuousServer`, built over
            ``faults.machine_view()``.
        session: The external-mode :class:`ServerSession` the router
            drives.  Ledger recording is always on — the fleet validator
            needs per-replica KV ledgers to prove conservation across
            migration.
        detected_down: Router-visible health (heartbeat detection), kept
            by the router; starts healthy.
    """

    def __init__(
        self,
        name: str,
        engine: "PerfEngine",
        faults: FaultSchedule | None = None,
        role: str = ReplicaRole.BOTH,
        **server_kwargs,
    ) -> None:
        if role not in ReplicaRole.ALL:
            raise ValueError(f"unknown replica role {role!r}; choose from {ReplicaRole.ALL}")
        self.name = name
        self.engine = engine
        self.faults = faults
        self.role = role
        self.machine_faults = faults.machine_view() if faults is not None else None
        self.server = ContinuousServer(engine, faults=self.machine_faults, **server_kwargs)
        self.session: ServerSession = self.server.session(external=True, record_ledger=True)
        self.detected_down = False

    def attach_tracer(self, tracer: "Tracer") -> None:  # repro-lint: disable=tracer-default -- attaching is itself the opt-in; a None tracer is meaningless here
        """Point this replica's server at ``tracer`` and rebuild the session.

        Used by the fleet router when given a
        :class:`~repro.telemetry.fleet.FleetTracer` — each replica gets
        its own per-replica tracer lane.  Must be called before the run
        starts: the session is rebuilt from scratch (so its tracer wiring
        and fault annotations are recorded), which discards any state an
        already-driven session accumulated.

        Raises:
            RuntimeError: If the session has already advanced or holds
                submitted work.
        """
        session = self.session
        if session.now > 0.0 or session.has_work() or session.outbox:
            raise RuntimeError(
                f"replica {self.name!r}: cannot attach a tracer to a "
                "session that already ran"
            )
        self.server.tracer = tracer
        self.session = self.server.session(external=True, record_ledger=True)

    @property
    def kv_budget_bytes(self) -> Bytes:
        return self.session.pool.usable_capacity

    def crash_windows(self) -> tuple[tuple[Seconds, Seconds], ...]:
        """Ground-truth crash windows of this replica's schedule."""
        if self.faults is None:
            return ()
        return self.faults.crash_windows()

    def is_crashed(self, t: Seconds) -> bool:
        """Ground truth: is the replica process dead at time ``t``?"""
        return self.faults is not None and self.faults.is_crashed(t)

    def link_degrade_factor(self, t: Seconds) -> Ratio:
        """Interconnect slowdown divisor at this endpoint at time ``t``."""
        if self.faults is None:
            return 1.0
        return self.faults.link_degrade_factor(t)

    def serves_prefill(self) -> bool:
        return self.role in (ReplicaRole.BOTH, ReplicaRole.PREFILL)

    def serves_decode(self) -> bool:
        return self.role in (ReplicaRole.BOTH, ReplicaRole.DECODE)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Replica(name={self.name!r}, machine={self.engine.machine.name!r}, "
            f"role={self.role!r})"
        )
