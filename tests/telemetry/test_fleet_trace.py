"""Fleet-wide observability: merged traces, reconciliation, forensics.

Acceptance bar for the fleet telemetry layer, on the canonical 3-replica
chaos scenario (r0-pc-high crashes at 6 s for 18 s, one request fails
over mid-decode):

* the merged fleet trace reconciles with the :class:`FleetResult` to
  1e-6 (busy union, per-token times, disposition counts);
* attaching the :class:`FleetTracer` changes *nothing* about the run —
  bit-identical to ``tracer=None``;
* ``explain-request`` reproduces the failover request's replay path
  exactly (golden transcript);
* burn-rate alerts land inside the crash window, annotated with it;
* the replica fault schedule and Chrome export carry the fleet lanes.
"""

import json

import pytest

from repro.bench.fleet_chaos import (
    DEFAULT_SLO,
    build_fleet,
    default_fleet_monitor,
    fleet_requests,
)
from repro.check.schedule import validate_fleet_run
from repro.serving.metrics import merge_busy_intervals
from repro.telemetry import (
    FleetTracer,
    TraceContext,
    explain_request,
    format_explanation,
    to_chrome_trace_fleet,
)

CRASH_WINDOW = (6.0, 24.0)
# The canonical failover victim: dispatched to r0-pc-high just before the
# crash, aborted mid-decode, replayed on r1-pc-low (see golden below).
FAILOVER_RID = 9


def deep_tracer():
    return FleetTracer(monitor=default_fleet_monitor(), slo=DEFAULT_SLO)


@pytest.fixture(scope="module")
def traced():
    tracer = deep_tracer()
    result = build_fleet(tracer=tracer).run(fleet_requests())
    return tracer, result


class TestReconciliation:
    def test_validator_clean_with_and_without_tracer(self, traced):
        tracer, result = traced
        assert validate_fleet_run(result) == []
        assert validate_fleet_run(result, tracer=tracer) == []

    def test_busy_union_matches_report_to_1e6(self, traced):
        tracer, result = traced
        report_union = merge_busy_intervals(result.report.busy_intervals)
        assert tracer.merged_busy_union() == pytest.approx(
            report_union, rel=1e-6, abs=1e-9
        )

    def test_router_token_events_are_the_report_floats(self, traced):
        tracer, result = traced
        tokens: dict[int, list[float]] = {}
        for ev in tracer.router.request_events:
            if ev.kind == "token":
                tokens.setdefault(ev.request_id, []).append(ev.time)
        for metrics in result.report.completed:
            rid = metrics.request.request_id
            assert tokens[rid] == list(metrics.token_times)

    def test_doctored_trace_is_caught(self, traced):
        tracer, result = traced
        tracer.router.add_request_event(
            result.report.completed[0].request.request_id, "token", 1e9
        )
        try:
            violations = validate_fleet_run(result, tracer=tracer)
            assert any(v.check == "fleet-trace-tokens" for v in violations)
        finally:
            tracer.router.request_events.pop()


class TestBitIdentity:
    def test_deep_tracing_changes_nothing(self, traced):
        _, result = traced
        bare = build_fleet(tracer=None).run(fleet_requests())
        assert bare.to_dict(slo=DEFAULT_SLO) == result.to_dict(slo=DEFAULT_SLO)


class TestAlerts:
    def test_alerts_fire_inside_crash_window_with_annotation(self, traced):
        tracer, _ = traced
        alerts = tracer.alerts
        assert alerts, "the 18 s crash must fire at least one burn-rate alert"
        for alert in alerts:
            assert CRASH_WINDOW[0] <= alert.time <= CRASH_WINDOW[1]
            assert "crash:r0-pc-high" in alert.context
        # Alerts also land on the router's annotation lane for the trace.
        instants = [i for i in tracer.router.instants if i.lane == "alerts"]
        assert len(instants) == len(alerts)

    def test_fault_free_run_stays_silent(self):
        tracer = deep_tracer()
        build_fleet(chaos=False, tracer=tracer).run(fleet_requests())
        assert tracer.alerts == []


class TestMergedTrace:
    def test_fault_schedule_on_fleet_lane(self, traced):
        tracer, _ = traced
        regions = tracer.router.regions_on("fleet-faults:r0-pc-high")
        assert [(r.name, r.start, r.end) for r in regions] == [
            ("replica-crash", *CRASH_WINDOW)
        ]

    def test_timeseries_sees_the_crash(self, traced):
        tracer, _ = traced
        up = tracer.timeseries.series("fleet/up_replicas")
        assert min(v for _, v in up.samples()) == 2.0
        assert up.window_mean(0.0, CRASH_WINDOW[0]) == 3.0
        for name in ("queue_depth", "kv_used_bytes", "busy_s"):
            assert f"r0-pc-high/{name}" in tracer.timeseries

    def test_chrome_export_has_one_lane_per_replica_plus_router(self, traced):
        tracer, _ = traced
        events = to_chrome_trace_fleet(tracer)
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert any(n.startswith("router/") for n in names)
        for replica in tracer.replica_names:
            assert any(n.startswith(f"{replica}/") for n in names)
        hops = {
            e["args"]["hop"]
            for e in events
            if e.get("ph") == "i" and "hop" in e.get("args", {})
        }
        assert hops >= {0, 1}
        json.dumps(events)  # must be JSON-serializable as exported


class TestExplainRequest:
    def test_failover_replay_path_is_exact(self, traced):
        tracer, result = traced
        explanation = explain_request(tracer, result, FAILOVER_RID)
        summary = explanation["summary"]
        assert summary["disposition"] == "completed"
        assert summary["n_hops"] == 2
        assert summary["replay_path"] == [
            "dispatch->r0-pc-high",
            "redispatch->r1-pc-low",
        ]
        assert summary["replicas"] == ["r0-pc-high", "r1-pc-low"]
        assert summary["n_tokens"] == 128
        kinds = [e["kind"] for e in explanation["timeline"]]
        # Crash forensics in causal order: aborted on the dead replica,
        # failed over, replayed, finished on the survivor.
        for a, b in (
            ("hop-dispatch", "abort"),
            ("abort", "failover"),
            ("failover", "hop-redispatch"),
            ("hop-redispatch", "fleet-finish"),
        ):
            assert kinds.index(a) < kinds.index(b)
        # The crash's burn-rate alerts fire later (the long window has to
        # fill with post-crash badness) — none overlap this request.
        assert explanation["alerts_during"] == []

    def test_golden_transcript(self, traced):
        """The full rendered forensics for the failover request, verbatim."""
        tracer, result = traced
        text = format_explanation(explain_request(tracer, result, FAILOVER_RID))
        golden = "\n".join(
            [
                "request 9: completed after 2 hop(s) via r0-pc-high -> r1-pc-low",
                "  ttft 0.008s, latency 2.006s, 128 tokens",
                "     5.8417s  router           hop-dispatch hop=0 -> r0-pc-high",
                "     5.8417s  router           dispatch hop=0",
                "     5.8417s  r0-pc-high       arrive hop=0",
                "     5.8417s  r0-pc-high       admit hop=0",
                "     5.8497s  router           token",
                "     5.8497s  r0-pc-high       token hop=0",
                "     5.8543s  router           tokens x32 (through 5.9965s)",
                "     6.0000s  r0-pc-high       abort hop=0",
                "     6.5000s  router           failover",
                "     6.5000s  router           redispatch",
                "     6.5500s  router           hop-redispatch hop=1 -> r1-pc-low",
                "     6.5500s  router           dispatch hop=1",
                "     6.5500s  r1-pc-low        arrive hop=1",
                "     6.5543s  r1-pc-low        admit hop=1",
                "     6.6100s  router           token",
                "     6.6100s  r1-pc-low        token hop=1",
                "     6.6256s  router           tokens x94 (through 7.8472s)",
                "     7.8472s  router           fleet-finish",
                "     7.8472s  r1-pc-low        finish hop=1",
            ]
        )
        assert text == golden

    def test_in_flight_alerts_render_inline(self, traced):
        """A request overlapping the alert window carries the alerts."""
        tracer, result = traced
        explanation = explain_request(tracer, result, 35)
        times = [a["time"] for a in explanation["alerts_during"]]
        assert times == [15.0, 15.75, 18.5]
        assert all(a["objective"] == "tbt" for a in explanation["alerts_during"])
        text = format_explanation(explanation)
        assert "! alert tbt at 15.000s" in text

    def test_unknown_request_has_empty_timeline(self, traced):
        tracer, result = traced
        explanation = explain_request(tracer, result, 10_000)
        assert explanation["summary"]["disposition"] == "unknown"
        assert explanation["timeline"] == []


class TestTraceContext:
    def test_child_increments_hop(self):
        ctx = TraceContext(request_id=7)
        assert (ctx.hop, ctx.parent) == (0, None)
        child = ctx.child()
        assert (child.request_id, child.hop, child.parent) == (7, 1, 0)
