"""Integer-linear-programming neuron placement (paper Section 6.3).

Maximizes the total impact of GPU-resident neurons (Equation 2) subject to:

* every neuron lives on exactly one device (Equation 3 — implicit: the
  binary ``a`` variable means GPU, its complement CPU);
* the communication constraint (Inequality 4): if any of a block's neurons
  go to the GPU, at least ``C_l`` of them must, so the GPU's time advantage
  covers one intra-layer synchronization ``T_sync``, where per-neuron time
  is the weight-read time of Equation 5;
* memory capacities of both devices (Inequality 6);
* the all-or-at-least-C_l conditional, linearized with a binary ``y_l`` and
  big-K (Inequalities 7-8).

Neurons are pre-grouped into similar-impact batches of 64 (Section 6.3.3),
so the MILP has one binary per batch plus one ``y`` per group and solves in
seconds with HiGHS (via ``scipy.optimize.milp``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.hardware.spec import MachineSpec
from repro.solver.batching import NeuronBatch, batch_neurons
from repro.solver.placement import NeuronGroup, PlacementPolicy

__all__ = ["SolverOptions", "communication_threshold", "solve_ilp"]


@dataclass(frozen=True)
class SolverOptions:
    """Knobs for the ILP solve.

    Attributes:
        batch_size: Neurons per placement batch (paper: 64).
        time_limit: HiGHS wall-clock limit in seconds.
        mip_rel_gap: Acceptable relative optimality gap.
        enforce_communication: Apply Inequalities 4/7/8 (disabling them
            yields the naive "+Engine" policy's behaviour for ablations).
        weight_impact_by_bytes: Weight each neuron's impact by its weight
            bytes in the objective.  Within one layer — where Equation 1 is
            stated and all neurons are the same size — this is a constant
            factor and changes nothing; across heterogeneous blocks
            (attention heads are ~100x an MLP neuron) it makes the
            objective "GPU-served activated computation", the quantity the
            paper's Figure 12 measures.
    """

    batch_size: int = 64
    time_limit: float = 30.0
    mip_rel_gap: float = 1e-3
    enforce_communication: bool = True
    weight_impact_by_bytes: bool = True


def communication_threshold(group: NeuronGroup, machine: MachineSpec) -> int:
    """Minimum GPU neuron count ``C_l`` for one block (Inequality 4).

    Solves ``C * T_gpu + T_sync <= C * T_cpu`` for the smallest integer C;
    per-neuron times follow Equation 5 (weight bytes / device bandwidth).
    Returns 0 when the GPU is never worth a synchronization (T_cpu <=
    T_gpu, which does not occur with real specs).
    """
    t_gpu = group.neuron_bytes / machine.gpu.effective_bandwidth
    t_cpu = group.neuron_bytes / machine.cpu.effective_bandwidth
    if t_cpu <= t_gpu:
        return 0
    return int(math.ceil(machine.sync_overhead / (t_cpu - t_gpu)))


def _solution_to_masks(
    groups: list[NeuronGroup],
    group_batches: list[list[NeuronBatch]],
    a_values: np.ndarray,
) -> list[np.ndarray]:
    masks: list[np.ndarray] = []
    cursor = 0
    for group, batches in zip(groups, group_batches):
        mask = np.zeros(group.n_neurons, dtype=bool)
        for batch in batches:
            if a_values[cursor] > 0.5:
                mask[batch.neuron_indices] = True
            cursor += 1
        masks.append(mask)
    return masks


def solve_ilp(
    groups: list[NeuronGroup],
    machine: MachineSpec,
    gpu_budget_bytes: float,
    cpu_budget_bytes: float | None = None,
    options: SolverOptions | None = None,
) -> PlacementPolicy:
    """Solve the neuron placement MILP.

    Args:
        groups: Sparsifiable blocks with per-neuron impacts and sizes.
        machine: Hardware the policy targets (bandwidths, T_sync).
        gpu_budget_bytes: GPU memory available for neuron weights (capacity
            minus predictors, buffers, and non-sparsifiable weights).
        cpu_budget_bytes: Optional CPU-side cap; omitted when host memory
            comfortably holds the model (the common case in the paper).
        options: Solver knobs.

    Returns:
        A :class:`PlacementPolicy` with ``solver_name="ilp"``.

    Raises:
        RuntimeError: If HiGHS reports infeasibility (e.g. the CPU budget
            cannot hold the spill) or finds no incumbent in time.
    """
    if gpu_budget_bytes < 0:
        raise ValueError("gpu_budget_bytes must be non-negative")
    opts = options or SolverOptions()

    # Small groups (e.g. attention heads) get finer batches so placement
    # retains neuron granularity; large groups use the configured size.
    group_batches = [
        batch_neurons(
            g.impacts, g.neuron_bytes, min(opts.batch_size, max(1, g.n_neurons // 8))
        )
        for g in groups
    ]
    n_a = sum(len(b) for b in group_batches)
    n_groups = len(groups)
    use_comm = opts.enforce_communication
    n_vars = n_a + (n_groups if use_comm else 0)

    # Objective: minimize -sum(impact * a), optionally byte-weighted.
    c = np.zeros(n_vars)
    impacts = np.concatenate(
        [[b.impact for b in batches] for batches in group_batches]
    ) if n_a else np.zeros(0)
    if opts.weight_impact_by_bytes:
        weights = np.concatenate(
            [
                [g.neuron_bytes] * len(batches)
                for g, batches in zip(groups, group_batches)
            ]
        ) if n_a else np.zeros(0)
        objective_coeffs = impacts * weights
    else:
        objective_coeffs = impacts
    c[:n_a] = -objective_coeffs

    batch_bytes = np.concatenate(
        [[b.nbytes for b in batches] for batches in group_batches]
    ) if n_a else np.zeros(0)
    batch_sizes = np.concatenate(
        [[b.size for b in batches] for batches in group_batches]
    ) if n_a else np.zeros(0)

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    lbs: list[float] = []
    ubs: list[float] = []
    row_id = 0

    def add_row(col_idx: np.ndarray, coeffs: np.ndarray, lb: float, ub: float) -> None:
        nonlocal row_id
        rows.append(np.full(col_idx.size, row_id))
        cols.append(col_idx)
        vals.append(coeffs)
        lbs.append(lb)
        ubs.append(ub)
        row_id += 1

    # (6) GPU memory: sum(bytes * a) <= gpu_budget.
    add_row(np.arange(n_a), batch_bytes, -np.inf, gpu_budget_bytes)

    # (6) CPU memory: total - sum(bytes * a) <= cpu_budget.
    if cpu_budget_bytes is not None:
        total_bytes = float(batch_bytes.sum())
        add_row(np.arange(n_a), batch_bytes, total_bytes - cpu_budget_bytes, np.inf)

    # (4)/(7)/(8): per-group communication constraints via y_l and big-K.
    if use_comm:
        cursor = 0
        for gi, (group, batches) in enumerate(zip(groups, group_batches)):
            idx = np.arange(cursor, cursor + len(batches))
            sizes = batch_sizes[cursor : cursor + len(batches)]
            y_col = n_a + gi
            c_l = communication_threshold(group, machine)
            big_k = float(group.n_neurons)
            # (7) sum(size * a) - C_l * y >= 0
            add_row(
                np.concatenate([idx, [y_col]]),
                np.concatenate([sizes, [-float(c_l)]]),
                0.0,
                np.inf,
            )
            # (8) sum(size * a) - K * y <= 0
            add_row(
                np.concatenate([idx, [y_col]]),
                np.concatenate([sizes, [-big_k]]),
                -np.inf,
                0.0,
            )
            cursor += len(batches)

    a_matrix = sparse.csc_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(row_id, n_vars),
    )
    constraints = LinearConstraint(a_matrix, np.array(lbs), np.array(ubs))
    result = milp(
        c=c,
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=Bounds(0, 1),
        options={"time_limit": opts.time_limit, "mip_rel_gap": opts.mip_rel_gap},
    )
    if result.x is None:
        raise RuntimeError(f"placement MILP failed: {result.message}")

    masks = _solution_to_masks(groups, group_batches, result.x[:n_a])
    objective = float(objective_coeffs @ np.round(result.x[:n_a]))
    return PlacementPolicy(
        groups=list(groups), gpu_masks=masks, objective=objective, solver_name="ilp"
    )
