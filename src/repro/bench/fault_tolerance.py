"""SLO attainment under injected faults: graceful degradation vs naive.

Chaos study for the continuous-batching server (beyond-paper).  One Poisson
request stream is played twice through the same engine and the same fault
schedule — a 4x PCIe-bandwidth degradation window, a KV-budget shrink
window, and a transient device stall — differing only in whether graceful
degradation is enabled:

* **naive** — suffers every fault but does not adapt: full batch while the
  machine is slow, admission starved while the KV budget is shrunk.
* **degraded** — caps the running batch during throughput faults (keeping
  the token cadence of admitted requests inside the TBT SLO) and re-plans a
  smaller GPU hot-neuron set when the KV budget shrinks (trading hot-neuron
  residency for KV space so admission keeps flowing).

Both servers share deadlines, bounded retry, and load shedding, so the
comparison isolates the degradation policy.  Scored on *overall* SLO
attainment — submitted requests in the denominator — so neither server can
look better by dropping work.  Everything is seeded; two runs produce
identical rows (the determinism contract the chaos tests assert).
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import make_engine
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.serving import SLO, poisson_arrivals, simulate_continuous_serving
from repro.workloads import CHATGPT_PROMPTS

__all__ = ["default_fault_schedule", "run_fault_tolerance", "DEFAULT_SLO"]

MODEL = "opt-6.7b"
# The low-end machine: a large cold-neuron share makes iteration cost
# genuinely sensitive to PCIe bandwidth, which is the fault under study.
MACHINE = "pc-low"
DTYPE = "int4"
N_REQUESTS = 48
RATE_RPS = 0.9
MAX_BATCH = 8
KV_BUDGET_BYTES = 0.35 * 2**30
DEADLINE_S = 12.0
MAX_RETRIES = 2
MAX_QUEUE = 16
SEED = 1234
# TBT target sits between the degraded-machine iteration cost at the capped
# batch (met) and at the full batch (missed) — the margin the brownout
# batch cap is designed to protect.
DEFAULT_SLO = SLO(ttft_target=6.0, tbt_target=0.020)


def default_fault_schedule() -> FaultSchedule:
    """The canonical chaos timeline: degrade, squeeze, stall.

    Windows are placed inside the ~55 s span of the default stream so each
    fault catches the server with work in flight.
    """
    return FaultSchedule(
        [
            FaultEvent(FaultKind.PCIE_DEGRADE, start=8.0, duration=14.0, magnitude=4.0),
            FaultEvent(FaultKind.KV_SHRINK, start=26.0, duration=14.0, magnitude=0.08),
            FaultEvent(FaultKind.DEVICE_STALL, start=44.0, duration=1.0),
        ]
    )


def _serve(engine, requests, faults, degradation: bool):
    return simulate_continuous_serving(
        engine,
        requests,
        policy="chunked",
        max_batch=MAX_BATCH,
        kv_budget_bytes=KV_BUDGET_BYTES,
        max_prefill_tokens=32,
        faults=faults,
        max_retries=MAX_RETRIES,
        max_queue=MAX_QUEUE,
        degradation=degradation,
    )


def _row(server: str, faults_label: str, report) -> dict:
    return {
        "server": server,
        "faults": faults_label,
        "slo_attainment": report.slo_attainment_overall(DEFAULT_SLO),
        "completed": len(report.completed),
        "timed_out": len(report.timed_out),
        "shed": len(report.shed),
        "failed": len(report.failed),
        "aborts": report.n_aborts,
        "retries": report.n_retries,
        "deadline_miss_rate": report.deadline_miss_rate,
        "degraded_time_s": report.time_in_degraded_mode,
        "p99_latency_s": (
            report.latency_percentile(99) if report.completed else float("nan")
        ),
        "utilization": report.utilization,
    }


def run_fault_tolerance(quick: bool = False) -> list[dict]:
    """Naive vs degradation-enabled serving under the canonical faults.

    Returns one row per (server, fault condition).  ``quick`` skips the
    fault-free reference row (the CI smoke configuration).  Invariants
    checked here rather than trusted: every submitted request is accounted
    for, and the degradation-enabled server strictly beats the naive one
    on overall SLO attainment under faults.
    """
    engine = make_engine("powerinfer", MODEL, MACHINE, DTYPE)
    faults = default_fault_schedule()
    requests = poisson_arrivals(
        CHATGPT_PROMPTS,
        rate=RATE_RPS,
        n_requests=N_REQUESTS,
        rng=np.random.default_rng(SEED),
        deadline=DEADLINE_S,
    )

    rows: list[dict] = []
    if not quick:
        clean = _serve(engine, requests, faults=None, degradation=True)
        rows.append(_row("degraded", "none", clean))

    naive = _serve(engine, requests, faults, degradation=False)
    degraded = _serve(engine, requests, faults, degradation=True)
    for report in (naive, degraded):
        if report.n_submitted != N_REQUESTS:
            raise AssertionError(
                f"request accounting broken: {report.n_submitted} of "
                f"{N_REQUESTS} submitted requests have a disposition"
            )
    rows.append(_row("naive", "chaos", naive))
    rows.append(_row("degraded", "chaos", degraded))

    naive_att = naive.slo_attainment_overall(DEFAULT_SLO)
    degraded_att = degraded.slo_attainment_overall(DEFAULT_SLO)
    if not degraded_att > naive_att:
        raise AssertionError(
            "graceful degradation failed to beat the naive server under "
            f"faults: degraded={degraded_att:.3f} naive={naive_att:.3f}"
        )
    return rows
