"""Telemetry: event tracing, counter time-series, and trace exporters.

The observability layer of the reproduction (see docs/observability.md).
A :class:`Tracer` attached to the engine / continuous server records typed
span events (operator tasks on their device lanes, request lifecycles,
fault epochs, degraded-mode windows) plus sampled counters, aggregates
summaries in a :class:`MetricsRegistry`, and exports Chrome ``trace_event``
JSON (Perfetto / chrome://tracing), JSONL event logs, and a matplotlib
timeline figure.  With no tracer attached the instrumented code paths cost
one ``is None`` check and produce bit-identical results.

Fleet-wide observability builds on the same primitives: a
:class:`FleetTracer` holds one tracer per replica plus a router lane on
one simulated clock, a :class:`TimeSeriesBank` of ring-buffered series
sampled on fleet ticks, and an :class:`SLOMonitor` firing multi-window
burn-rate :class:`Alert`\\ s — with :func:`explain_request` reconstructing
any single request's cross-replica causal timeline.

Energy metering (:mod:`repro.telemetry.power`, see docs/energy.md) turns
the same realized schedules into watts, joules, and grams of CO2: linear
idle/busy/peak device power models with throttle-aware DVFS scaling,
per-task energy ledgers reconciled against an integrated
:class:`PowerMeter`, request-level J/token, and fleet-wide watt lanes
sampled into the time-series bank — all post-hoc, never touching the
simulation.
"""

from repro.telemetry.exporters import (
    save_chrome_trace,
    save_fleet_chrome_trace,
    save_jsonl,
    to_chrome_trace,
    to_chrome_trace_fleet,
    to_jsonl_records,
)
from repro.telemetry.fleet import (
    FleetTracer,
    TraceContext,
    TraceHop,
    explain_request,
    format_explanation,
    record_fleet_fault_schedule,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.power import (
    EnergyReport,
    FleetEnergyReport,
    PowerMeter,
    PowerModel,
    RequestEnergy,
    TaskEnergy,
    fleet_energy,
    grams_co2,
    record_power_counters,
    request_energy,
    sample_fleet_power,
    schedule_energy,
    tracer_energy,
)
from repro.telemetry.slo import Alert, BurnRateRule, SLOMonitor, SLOObjective
from repro.telemetry.timeline import MissingDependencyError, plot_timeline
from repro.telemetry.timeseries import Series, TimeSeriesBank
from repro.telemetry.tracer import (
    CounterSample,
    Instant,
    NullTracer,
    Region,
    RequestEvent,
    RequestPhase,
    RequestSpan,
    TaskSpan,
    Tracer,
    record_fault_schedule,
)

__all__ = [
    "Alert",
    "BurnRateRule",
    "Counter",
    "CounterSample",
    "EnergyReport",
    "FleetEnergyReport",
    "FleetTracer",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "MissingDependencyError",
    "NullTracer",
    "PowerMeter",
    "PowerModel",
    "Region",
    "RequestEnergy",
    "RequestEvent",
    "RequestPhase",
    "RequestSpan",
    "SLOMonitor",
    "SLOObjective",
    "Series",
    "TaskEnergy",
    "TaskSpan",
    "TimeSeriesBank",
    "TraceContext",
    "TraceHop",
    "Tracer",
    "explain_request",
    "fleet_energy",
    "format_explanation",
    "grams_co2",
    "plot_timeline",
    "record_fault_schedule",
    "record_fleet_fault_schedule",
    "record_power_counters",
    "request_energy",
    "sample_fleet_power",
    "save_chrome_trace",
    "schedule_energy",
    "tracer_energy",
    "save_fleet_chrome_trace",
    "save_jsonl",
    "to_chrome_trace",
    "to_chrome_trace_fleet",
    "to_jsonl_records",
]
