"""Tests for the discrete-event DAG scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.events import EventSimulator, Resource, SimTask


def simulate(tasks):
    resources = sorted({t.resource for t in tasks})
    return EventSimulator(resources).run(tasks)


class TestResource:
    def test_reserve_serializes(self):
        res = Resource(name="r")
        s1, e1 = res.reserve(0.0, 2.0)
        s2, e2 = res.reserve(0.0, 3.0)
        assert (s1, e1) == (0.0, 2.0)
        assert (s2, e2) == (2.0, 5.0)
        assert res.busy_time == 5.0

    def test_reserve_waits_for_earliest(self):
        res = Resource(name="r")
        start, end = res.reserve(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Resource(name="r").reserve(0.0, -1.0)

    def test_reset(self):
        res = Resource(name="r")
        res.reserve(0.0, 5.0)
        res.reset()
        assert res.available_at == 0.0
        assert res.busy_time == 0.0


class TestScheduling:
    def test_chain_is_sequential(self):
        result = simulate(
            [
                SimTask("a", "r", 1.0),
                SimTask("b", "r", 2.0, deps=("a",)),
                SimTask("c", "r", 3.0, deps=("b",)),
            ]
        )
        assert result.makespan == pytest.approx(6.0)
        assert result.tasks["c"].start == pytest.approx(3.0)

    def test_independent_tasks_on_distinct_resources_overlap(self):
        result = simulate([SimTask("a", "x", 5.0), SimTask("b", "y", 3.0)])
        assert result.makespan == pytest.approx(5.0)
        assert result.tasks["b"].start == 0.0

    def test_join_waits_for_both_parents(self):
        result = simulate(
            [
                SimTask("a", "x", 5.0),
                SimTask("b", "y", 3.0),
                SimTask("c", "x", 1.0, deps=("a", "b")),
            ]
        )
        assert result.tasks["c"].start == pytest.approx(5.0)

    def test_same_resource_serializes_independent_tasks(self):
        result = simulate([SimTask("a", "r", 2.0), SimTask("b", "r", 2.0)])
        assert result.makespan == pytest.approx(4.0)

    def test_priority_breaks_ties(self):
        result = simulate(
            [
                SimTask("late", "r", 1.0, priority=5),
                SimTask("early", "r", 1.0, priority=1),
            ]
        )
        assert result.tasks["early"].start == 0.0
        assert result.tasks["late"].start == pytest.approx(1.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            simulate([SimTask("a", "r", 1.0), SimTask("a", "r", 1.0)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            simulate([SimTask("a", "r", 1.0, deps=("ghost",))])

    def test_unknown_resource_rejected(self):
        sim = EventSimulator(["r"])
        with pytest.raises(ValueError, match="unknown resource"):
            sim.run([SimTask("a", "other", 1.0)])

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            simulate(
                [SimTask("a", "r", 1.0, deps=("b",)), SimTask("b", "r", 1.0, deps=("a",))]
            )

    def test_empty_dag(self):
        assert simulate([]).makespan == 0.0

    def test_tag_time_accumulates(self):
        result = simulate(
            [
                SimTask("a", "r", 1.0, tag="compute"),
                SimTask("b", "r", 2.0, tag="compute"),
                SimTask("c", "r", 4.0, tag="transfer"),
            ]
        )
        assert result.time_by_tag() == {"compute": 3.0, "transfer": 4.0}

    def test_utilization(self):
        result = simulate([SimTask("a", "x", 2.0), SimTask("b", "y", 4.0)])
        assert result.resource_utilization("x") == pytest.approx(0.5)
        assert result.resource_utilization("y") == pytest.approx(1.0)

    def test_duplicate_resource_registration_rejected(self):
        sim = EventSimulator(["r"])
        with pytest.raises(ValueError):
            sim.add_resource("r")

    def test_reset_allows_reuse(self):
        sim = EventSimulator(["r"])
        sim.run([SimTask("a", "r", 3.0)])
        sim.reset()
        result = sim.run([SimTask("a", "r", 3.0)])
        assert result.tasks["a"].start == 0.0


class TestSchedulingProperties:
    @staticmethod
    def _random_dag(durations, edge_flags):
        tasks = []
        n = len(durations)
        flag_iter = iter(edge_flags)
        for i, dur in enumerate(durations):
            deps = tuple(
                f"t{j}" for j in range(i) if next(flag_iter, False)
            )
            tasks.append(SimTask(f"t{i}", f"r{i % 2}", dur, deps=deps))
        return tasks

    @given(
        durations=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=8),
        edge_flags=st.lists(st.booleans(), min_size=0, max_size=28),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_for_random_dags(self, durations, edge_flags):
        tasks = self._random_dag(durations, edge_flags)
        result = simulate(tasks)
        by_name = {t.name: t for t in tasks}
        # 1. Every task scheduled exactly once.
        assert set(result.tasks) == {t.name for t in tasks}
        # 2. Dependencies respected.
        for task in tasks:
            for dep in task.deps:
                assert result.tasks[task.name].start >= result.tasks[dep].end
        # 3. Makespan bounds: critical path <= makespan <= sum of durations.
        assert result.makespan <= sum(durations) + 1e-9
        # 4. No overlap per resource.
        for res in ("r0", "r1"):
            intervals = sorted(
                (r.start, r.end)
                for r in result.tasks.values()
                if by_name[r.name].resource == res
            )
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9
