"""Energy-ledger validation: clean runs pass, doctored figures are named."""

import dataclasses
import math

import pytest

from repro.check.schedule import validate_energy_report, validate_fleet_energy
from repro.hardware.events import EventSimulator, SimTask
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.hardware.spec import MACHINE_PRESETS
from repro.telemetry.power import schedule_energy

MACHINE = MACHINE_PRESETS["pc-low"]


def clean_report(faults=None):
    tasks = [
        SimTask(name="load", resource="pcie", duration=0.4),
        SimTask(name="gpu-a", resource="gpu", duration=1.0, deps=("load",)),
        SimTask(name="cpu-a", resource="cpu", duration=0.8, deps=("load",)),
        SimTask(name="gpu-b", resource="gpu", duration=0.5, deps=("gpu-a",)),
    ]
    result = EventSimulator(["gpu", "cpu", "pcie"]).run(tasks)
    return schedule_energy(result, MACHINE, faults=faults)


def doctor_entry(report, name, **changes):
    """Replace one ledger entry and rebuild the (frozen) report around it."""
    tasks = tuple(
        dataclasses.replace(e, **changes) if e.name == name else e
        for e in report.tasks
    )
    return dataclasses.replace(report, tasks=tasks)


def checks_of(violations):
    return {v.check for v in violations}


class TestCleanLedgers:
    def test_clean_report_passes(self):
        assert validate_energy_report(clean_report()) == []

    def test_clean_dvfs_window_passes(self):
        # A throttle window covering part of the schedule: the ledger
        # prices the slowed tasks at scaled watts and the meter integrates
        # the same curve, so the 1e-6 reconciliation must still hold.
        faults = FaultSchedule(
            [FaultEvent(FaultKind.GPU_THROTTLE, start=0.5, duration=2.0, magnitude=2.0)]
        )
        report = clean_report(faults=faults)
        assert validate_energy_report(report) == []
        # The window genuinely changed the pricing (guards a vacuous pass).
        assert report.dynamic_joules < clean_report().dynamic_joules


class TestDoctoredLedgers:
    def test_doctored_task_joules_names_task_and_values(self):
        report = clean_report()
        entry = next(e for e in report.tasks if e.name == "gpu-a")
        doctored = doctor_entry(report, "gpu-a", joules=entry.joules * 2.0)
        violations = validate_energy_report(doctored)
        product = [v for v in violations if v.check == "energy-task-product"]
        assert len(product) == 1
        assert product[0].task == "gpu-a"
        assert f"{entry.joules * 2.0:.9g}" in product[0].message
        assert f"{entry.watts * (entry.end - entry.start):.9g}" in product[0].message

    def test_undone_dvfs_scaling_is_caught(self):
        # Doctor a throttled entry back to its unthrottled draw (watts and
        # joules kept self-consistent, so the per-task product check stays
        # silent) — the ledger/meter cross-checks must still flag it.
        faults = FaultSchedule(
            [FaultEvent(FaultKind.GPU_THROTTLE, start=0.0, duration=9.0, magnitude=2.0)]
        )
        report = clean_report(faults=faults)
        entry = next(e for e in report.tasks if e.name == "gpu-a")
        unthrottled = entry.watts * 2.0**3
        doctored = doctor_entry(
            report,
            "gpu-a",
            watts=unthrottled,
            joules=unthrottled * (entry.end - entry.start),
        )
        checks = checks_of(validate_energy_report(doctored))
        assert "energy-task-product" not in checks
        assert "energy-ledger-sum" in checks
        assert "energy-meter-drift" in checks

    def test_doctored_dynamic_total(self):
        report = clean_report()
        doctored = dataclasses.replace(
            report, dynamic_joules=report.dynamic_joules + 1.0
        )
        violations = validate_energy_report(doctored)
        assert checks_of(violations) == {"energy-ledger-sum"}
        msg = violations[0].message
        assert f"{doctored.dynamic_joules:.9g}" in msg
        assert f"{report.dynamic_joules:.9g}" in msg

    def test_doctored_static_total(self):
        report = clean_report()
        doctored = dataclasses.replace(report, static_joules=report.static_joules * 0.5)
        assert checks_of(validate_energy_report(doctored)) == {"energy-static"}

    def test_doctored_meter_reading(self):
        report = clean_report()
        doctored = dataclasses.replace(
            report, metered_joules=report.metered_joules + 0.1
        )
        violations = validate_energy_report(doctored)
        assert checks_of(violations) == {"energy-meter-drift"}
        assert "independent sweep" in violations[0].message

    def test_negative_and_nonfinite_entries(self):
        report = clean_report()
        entry = next(e for e in report.tasks if e.name == "gpu-a")
        negative = doctor_entry(report, "gpu-a", watts=-5.0, joules=-5.0 * (entry.end - entry.start))
        assert "energy-task-negative" in checks_of(validate_energy_report(negative))
        nonfinite = doctor_entry(report, "gpu-a", joules=math.nan)
        violations = validate_energy_report(nonfinite)
        assert "energy-task-nonfinite" in checks_of(violations)
        assert any(v.task == "gpu-a" for v in violations)

    def test_entry_outside_horizon(self):
        report = clean_report()
        entry = next(e for e in report.tasks if e.name == "gpu-b")
        doctored = doctor_entry(
            report,
            "gpu-b",
            start=report.horizon + 1.0,
            end=report.horizon + 1.0 + (entry.end - entry.start),
        )
        assert "energy-horizon" in checks_of(validate_energy_report(doctored))

    def test_tolerance_is_tight(self):
        # Drift just above 1e-6 relative must trip; float noise must not.
        report = clean_report()
        noisy = dataclasses.replace(
            report, metered_joules=report.metered_joules * (1.0 + 1e-9)
        )
        assert validate_energy_report(noisy) == []
        drifted = dataclasses.replace(
            report, metered_joules=report.metered_joules * (1.0 + 1e-5)
        )
        assert "energy-meter-drift" in checks_of(validate_energy_report(drifted))


class TestDoctoredFleetLedgers:
    def test_part_violations_carry_label_prefix(self):
        from repro.bench.fleet_chaos import (
            DEFAULT_SLO,
            build_fleet,
            default_fleet_monitor,
            fleet_requests,
        )
        from repro.telemetry.fleet import FleetTracer
        from repro.telemetry.power import fleet_energy

        tracer = FleetTracer(monitor=default_fleet_monitor(), slo=DEFAULT_SLO)
        result = build_fleet(tracer=tracer).run(fleet_requests(8))
        energy = fleet_energy(result, tracer)
        assert validate_fleet_energy(energy) == []

        victim = energy.replicas[0]
        doctored_part = dataclasses.replace(
            victim, dynamic_joules=victim.dynamic_joules + 1.0
        )
        doctored = dataclasses.replace(
            energy, replicas=(doctored_part,) + energy.replicas[1:]
        )
        violations = validate_fleet_energy(doctored)
        assert violations, "doctored replica ledger must be flagged"
        assert all(v.message.startswith(f"[{victim.label}]") for v in violations)
        assert "energy-ledger-sum" in checks_of(violations)
