"""Smoke tests for the cheap experiment drivers (shapes + schemas).

The heavy drivers run once in ``benchmarks/``; these cover the inexpensive
ones at unit-test speed plus the row schemas consumers (report formatting,
EXPERIMENTS.md) rely on.
"""

from repro.bench.fig06 import run_fig06
from repro.bench.fig09 import run_fig09_modeled
from repro.bench.fig16 import run_fig16_measured, run_fig16_modeled


class TestFig06Driver:
    def test_row_schema(self):
        rows = run_fig06(batch_sizes=(1, 64))
        assert len(rows) == 4  # 2 blocks x 2 batches
        for row in rows:
            assert set(row) == {
                "block",
                "batch",
                "load_then_execute_ms",
                "direct_execute_ms",
                "cpu_wins",
            }

    def test_custom_fractions(self):
        rows = run_fig06(mlp_fraction=0.5, batch_sizes=(1,))
        heavier = next(r for r in rows if r["block"] == "mlp")
        light = run_fig06(mlp_fraction=0.05, batch_sizes=(1,))
        lighter = next(r for r in light if r["block"] == "mlp")
        assert heavier["direct_execute_ms"] > lighter["direct_execute_ms"]


class TestFig09ModeledDriver:
    def test_row_schema_and_monotonicity(self):
        rows = run_fig09_modeled(sparsity_levels=(0.85, 0.95))
        assert [r["sparsity"] for r in rows] == [0.85, 0.95]
        assert rows[0]["mean_size_mb"] > rows[1]["mean_size_mb"]
        for row in rows:
            assert row["min_size_mb"] <= row["mean_size_mb"] <= row["max_size_mb"]


class TestFig16Drivers:
    def test_modeled_columns(self):
        rows = run_fig16_modeled(sparsity_levels=(0.5,))
        (row,) = rows
        assert "cpu_csr_dynamic_ms" in row
        assert row["cpu_csr_dynamic_ms"] > row["cpu_csr_ms"]

    def test_measured_small_n_is_quick_and_sane(self):
        rows = run_fig16_measured(n=128, sparsity_levels=(0.0, 0.95))
        assert len(rows) == 2
        for row in rows:
            assert row["dense_us"] > 0
            assert row["csr_dynamic_us"] > 0
