"""Figure 9 — predictor size vs layer sparsity at a 95% accuracy floor.

Paper: sparser layers admit smaller predictors; higher skewness shrinks
them further (the figure's error bars).  Reproduced with the real
iterative sizing loop on synthetic layers and with the closed-form model
on OPT-175B's dimensions.
"""

from conftest import run_once

from repro.bench.fig09 import run_fig09_modeled, run_fig09_trained


def test_fig09_trained_sizing(benchmark, record_rows):
    rows = run_once(benchmark, run_fig09_trained)
    record_rows("fig09_trained", rows, "Figure 9 — adaptive sizing (trained, small layers)")

    # Sparser layers must reach the target with predictors no larger than
    # denser layers' (monotone trend, modulo the discrete search grid).
    assert rows[-1]["params"] <= rows[0]["params"]
    for row in rows:
        assert row["accuracy"] >= 0.90, row


def test_fig09_modeled_sizing(benchmark, record_rows):
    rows = run_once(benchmark, run_fig09_modeled)
    record_rows("fig09_modeled", rows, "Figure 9 — modeled predictor size (OPT-175B dims)")

    sizes = [row["mean_size_mb"] for row in rows]
    assert sizes == sorted(sizes, reverse=True), "size must fall with sparsity"
    for row in rows:
        assert row["min_size_mb"] < row["max_size_mb"], "skewness must spread sizes"
