"""Neuron impact metric (paper Section 6.2, Equation 1).

The impact of a neuron measures its contribution to inference outcomes.
With enough profiling data, activation frequency mirrors runtime behaviour,
so the paper defines impact simply as the profiled activation frequency:
``v_i = f_i``.  Kept as an explicit, documented transformation so alternate
metrics can be swapped in for ablations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["neuron_impact"]


def neuron_impact(frequencies: np.ndarray) -> np.ndarray:
    """Impact metric per neuron: the profiled activation frequency (Eq. 1).

    Args:
        frequencies: Activation counts or rates, shape ``(n_neurons,)``.

    Returns:
        Float array of impacts (same shape).
    """
    freq = np.asarray(frequencies, dtype=np.float64)
    if freq.ndim != 1 or freq.size == 0:
        raise ValueError("frequencies must be a non-empty 1-D array")
    if (freq < 0).any():
        raise ValueError("frequencies must be non-negative")
    return freq.copy()
