"""Model zoo: architecture configs, synthetic weights, numpy transformer."""

from repro.models.config import (
    FALCON_40B,
    LLAMA_70B,
    MODEL_PRESETS,
    OPT_6_7B,
    OPT_13B,
    OPT_30B,
    OPT_66B,
    OPT_175B,
    Activation,
    ModelConfig,
    tiny_config,
)
from repro.models.kvcache import KVCache
from repro.models.tokenizer import ToyTokenizer
from repro.models.transformer import Transformer, mlp_activation_mask, softmax
from repro.models.weights import LayerWeights, ModelWeights, init_weights

__all__ = [
    "Activation",
    "FALCON_40B",
    "KVCache",
    "LLAMA_70B",
    "LayerWeights",
    "MODEL_PRESETS",
    "ModelConfig",
    "ModelWeights",
    "OPT_13B",
    "OPT_175B",
    "OPT_30B",
    "OPT_66B",
    "OPT_6_7B",
    "ToyTokenizer",
    "Transformer",
    "init_weights",
    "mlp_activation_mask",
    "softmax",
    "tiny_config",
]
