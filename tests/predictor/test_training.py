"""Tests for predictor training-data collection and synthesis."""

import numpy as np
import pytest

from repro.models.transformer import mlp_activation_mask
from repro.predictor.training import collect_training_data, synthesize_training_data


class TestCollect:
    def test_shapes_match_token_count(self, tiny_model, tiny_cfg, rng):
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=8) for _ in range(3)]
        x, y = collect_training_data(tiny_model, layer=0, requests=requests)
        assert x.shape == (24, tiny_cfg.d_model)
        assert y.shape == (24, tiny_cfg.d_ffn)
        assert y.dtype == bool

    def test_masks_are_true_activations(self, tiny_model, tiny_cfg, rng):
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=6)]
        x, y = collect_training_data(tiny_model, layer=1, requests=requests)
        recomputed = mlp_activation_mask(tiny_model.weights.layers[1], x)
        assert np.array_equal(y, recomputed)

    def test_collection_does_not_perturb_model(self, tiny_model, tiny_cfg, rng):
        from repro.models.kvcache import KVCache

        tokens = rng.integers(0, tiny_cfg.vocab_size, size=5)
        before = tiny_model.forward(tokens, KVCache(tiny_cfg))
        collect_training_data(tiny_model, 0, [tokens])
        after = tiny_model.forward(tokens, KVCache(tiny_cfg))
        assert np.array_equal(before, after)

    def test_invalid_layer_rejected(self, tiny_model, tiny_cfg):
        with pytest.raises(ValueError):
            collect_training_data(tiny_model, tiny_cfg.n_layers, [np.array([1])])

    def test_empty_requests_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            collect_training_data(tiny_model, 0, [np.array([], dtype=int)])


class TestSynthesize:
    def test_sparsity_on_target(self, rng):
        _, y = synthesize_training_data(32, 128, 1000, rng, target_sparsity=0.9)
        assert y.mean() == pytest.approx(0.1, abs=0.03)

    def test_power_law_in_neuron_rates(self, rng):
        _, y = synthesize_training_data(
            32, 256, 2000, rng, target_sparsity=0.9, hot_fraction=0.26, hot_mass=0.80
        )
        rates = np.sort(y.mean(axis=0))[::-1]
        top_share = rates[: int(0.26 * 256)].sum() / rates.sum()
        assert top_share == pytest.approx(0.80, abs=0.08)

    def test_masks_deterministic_from_inputs(self, rng):
        x, y = synthesize_training_data(16, 32, 100, rng, target_sparsity=0.8)
        # The mask is a deterministic function of x given the layer — same
        # x rows with same labels means the pair is self-consistent:
        # verify no two identical inputs have different masks.
        assert x.shape[0] == y.shape[0]

    def test_invalid_sparsity_rejected(self, rng):
        with pytest.raises(ValueError):
            synthesize_training_data(16, 32, 10, rng, target_sparsity=1.0)
