#!/usr/bin/env python
"""Quickstart: deploy PowerInfer for OPT-30B on a PC with an RTX 4090.

Runs the full offline phase (activation profiling, adaptive predictor
sizing, ILP neuron placement), then simulates serving a request and
compares against the llama.cpp baseline — the paper's headline experiment
in miniature.

Usage::

    python examples/quickstart.py
"""

from repro import FP16, OPT_30B, PC_HIGH, PowerInfer
from repro.bench.runner import make_engine


def main() -> None:
    print(f"Model:   {OPT_30B.name} ({OPT_30B.total_params / 1e9:.1f}B params, "
          f"{OPT_30B.weight_bytes(FP16) / 2**30:.1f} GiB in FP16)")
    print(f"Machine: {PC_HIGH.name} ({PC_HIGH.gpu.name} "
          f"{PC_HIGH.gpu.memory_capacity / 2**30:.0f} GiB + "
          f"{PC_HIGH.cpu.memory_capacity / 2**30:.0f} GiB host)")
    print()

    print("Running offline phase (profile -> predictors -> ILP placement)...")
    system = PowerInfer.deploy(OPT_30B, PC_HIGH, dtype=FP16)
    report = system.memory_report()
    print(f"  GPU committed: {report.gpu_used / 2**30:.1f} / "
          f"{report.gpu_capacity / 2**30:.1f} GiB "
          f"(hot neurons + predictors + embeddings)")
    print(f"  CPU committed: {report.cpu_used / 2**30:.1f} / "
          f"{report.cpu_capacity / 2**30:.1f} GiB (cold neurons + KV cache)")
    print(f"  GPU serves {system.gpu_load_share():.0%} of activated-neuron "
          f"computation (paper Figure 12: ~70%)")
    print()

    print("Serving a request (input 64 tokens, generate 128):")
    result = system.generate(input_len=64, output_len=128)
    print(f"  PowerInfer: {result.tokens_per_second:6.2f} tokens/s "
          f"({result.decode_latency * 1e3:.1f} ms/token decode)")

    llama = make_engine("llama.cpp", OPT_30B.name, PC_HIGH.name)
    baseline = llama.simulate_request(input_len=64, output_len=128)
    print(f"  llama.cpp:  {baseline.tokens_per_second:6.2f} tokens/s "
          f"({baseline.decode_latency * 1e3:.1f} ms/token decode)")
    print(f"  Speedup:    {result.tokens_per_second / baseline.tokens_per_second:.2f}x "
          f"(paper Figure 10: up to 11.69x)")


if __name__ == "__main__":
    main()
