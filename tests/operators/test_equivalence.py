"""Property-based cross-operator equivalence: every sparse operator must
compute exactly what the dense reference computes on the active subset."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.dense import dense_gemv
from repro.operators.neuron_aware import CpuNeuronGemv, gather_rows_gemv
from repro.operators.sparse_baselines import csr_from_row_sparse, csr_spmv, pit_gemv


@st.composite
def gemv_case(draw):
    m = draw(st.integers(4, 48))
    n = draw(st.integers(4, 32))
    seed = draw(st.integers(0, 2**31 - 1))
    n_active = draw(st.integers(0, m))
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((m, n)).astype(np.float32)
    x = rng.standard_normal(n).astype(np.float32)
    active = np.sort(rng.choice(m, size=n_active, replace=False))
    return weight, x, active


@given(case=gemv_case())
@settings(max_examples=60, deadline=None)
def test_all_sparse_operators_agree_with_dense(case):
    weight, x, active = case
    dense = dense_gemv(weight, x)
    reference = dense[active]

    gathered = gather_rows_gemv(weight, x, active)
    assert np.allclose(gathered, reference, atol=1e-4)

    pit = pit_gemv(weight, x, active)
    assert np.allclose(pit, reference, atol=1e-4)

    csr = csr_spmv(csr_from_row_sparse(weight, active), x)
    assert np.allclose(csr[active], reference, atol=1e-4)

    mask = np.zeros(weight.shape[0], dtype=bool)
    mask[active] = True
    compact, indices, _ = CpuNeuronGemv(n_cores=3).run(weight, x, mask)
    assert np.array_equal(indices, active)
    assert np.allclose(compact, reference, atol=1e-4)
