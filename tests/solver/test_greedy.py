"""Tests for the greedy placement policies."""

import numpy as np
import pytest

from repro.hardware.spec import PC_HIGH
from repro.solver.greedy import greedy_placement, greedy_with_repair
from repro.solver.ilp import communication_threshold
from repro.solver.placement import NeuronGroup


def make_groups(rng, n_groups=3, n_neurons=128, neuron_bytes=1e5):
    return [
        NeuronGroup(name=f"g{i}", impacts=rng.random(n_neurons), neuron_bytes=neuron_bytes)
        for i in range(n_groups)
    ]


class TestGreedy:
    def test_budget_respected(self, rng):
        groups = make_groups(rng)
        budget = 100 * 1e5
        policy = greedy_placement(groups, budget, batch_size=8)
        assert policy.gpu_bytes <= budget

    def test_fills_by_frequency(self, rng):
        groups = make_groups(rng, n_groups=1)
        policy = greedy_placement(groups, 64 * 1e5, batch_size=4)
        mask = policy.mask("g0")
        assert groups[0].impacts[mask].min() >= groups[0].impacts[~mask].max() - 0.2

    def test_zero_budget(self, rng):
        policy = greedy_placement(make_groups(rng), 0.0)
        assert policy.gpu_bytes == 0.0

    def test_whole_model_fits(self, rng):
        groups = make_groups(rng)
        total = sum(g.total_bytes for g in groups)
        policy = greedy_placement(groups, total)
        assert policy.gpu_impact_share() == pytest.approx(1.0)

    def test_negative_budget_rejected(self, rng):
        with pytest.raises(ValueError):
            greedy_placement(make_groups(rng), -5.0)

    def test_objective_recorded(self, rng):
        groups = make_groups(rng)
        policy = greedy_placement(groups, 100 * 1e5, batch_size=8)
        expected = sum(
            float(g.impacts[m].sum()) for g, m in zip(groups, policy.gpu_masks)
        )
        assert policy.objective == pytest.approx(expected)


class TestGreedyWithRepair:
    def test_no_sub_threshold_residues(self, rng):
        groups = make_groups(rng, n_groups=4, n_neurons=64, neuron_bytes=2e4)
        c_l = communication_threshold(groups[0], PC_HIGH)
        assert c_l > 1
        budget = int(1.5 * c_l) * 2e4  # enough for ~1.5 groups' thresholds
        policy = greedy_with_repair(groups, PC_HIGH, budget, batch_size=4)
        for group in groups:
            count = int(policy.mask(group.name).sum())
            assert count == 0 or count >= c_l

    def test_repair_never_beats_unconstrained_greedy(self, rng):
        groups = make_groups(rng, n_groups=4, n_neurons=64, neuron_bytes=2e4)
        budget = 60 * 2e4
        plain = greedy_placement(groups, budget, batch_size=4)
        repaired = greedy_with_repair(groups, PC_HIGH, budget, batch_size=4)
        assert repaired.objective <= plain.objective + 1e-9

    def test_large_budget_needs_no_repair(self, rng):
        groups = make_groups(rng)
        total = sum(g.total_bytes for g in groups)
        policy = greedy_with_repair(groups, PC_HIGH, total)
        assert policy.gpu_impact_share() == pytest.approx(1.0)
