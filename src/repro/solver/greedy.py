"""Greedy placement policies.

Two roles:

* :func:`greedy_placement` is the *naive* policy of the paper's ablation
  ("+Engine" in Figure 15): rank neuron batches purely by activation
  frequency and fill the GPU until its budget runs out, ignoring intra-layer
  communication overhead.  The paper shows this leaves performance on the
  table because thinly-split layers pay more in synchronization than the
  GPU's bandwidth advantage returns.
* :func:`greedy_with_repair` adds a repair pass enforcing the
  communication constraint (drop a group's GPU residue when it falls below
  ``C_l``, then refill) — a fast fallback should the MILP be unavailable
  and a sanity bound for ILP tests.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.spec import MachineSpec
from repro.solver.batching import batch_neurons
from repro.solver.ilp import communication_threshold
from repro.solver.placement import NeuronGroup, PlacementPolicy

__all__ = ["greedy_placement", "greedy_with_repair"]


def _fill_by_impact(
    groups: list[NeuronGroup],
    gpu_budget_bytes: float,
    batch_size: int,
    frozen_out: set[int] | None = None,
) -> list[np.ndarray]:
    """Greedy fill: take batches in descending impact density until full.

    ``frozen_out`` lists group indices barred from the GPU entirely.
    """
    frozen_out = frozen_out or set()
    candidates: list[tuple[float, int, object]] = []
    for gi, group in enumerate(groups):
        if gi in frozen_out:
            continue
        group_batch = min(batch_size, max(1, group.n_neurons // 8))
        for batch in batch_neurons(group.impacts, group.neuron_bytes, group_batch):
            # The naive policy ranks by activation frequency (the paper's
            # "+Engine" heuristic assigns frequently activated neurons to
            # the GPU): mean per-neuron frequency of the batch.
            density = batch.impact / batch.size
            candidates.append((density, gi, batch))
    candidates.sort(key=lambda item: item[0], reverse=True)

    masks = [np.zeros(g.n_neurons, dtype=bool) for g in groups]
    remaining = gpu_budget_bytes
    for _, gi, batch in candidates:
        if batch.nbytes <= remaining:
            masks[gi][batch.neuron_indices] = True
            remaining -= batch.nbytes
    return masks


def _objective(groups: list[NeuronGroup], masks: list[np.ndarray]) -> float:
    return sum(float(g.impacts[m].sum()) for g, m in zip(groups, masks))


def greedy_placement(
    groups: list[NeuronGroup],
    gpu_budget_bytes: float,
    batch_size: int = 64,
) -> PlacementPolicy:
    """Naive frequency-greedy placement (ablation "+Engine" policy)."""
    if gpu_budget_bytes < 0:
        raise ValueError("gpu_budget_bytes must be non-negative")
    masks = _fill_by_impact(groups, gpu_budget_bytes, batch_size)
    return PlacementPolicy(
        groups=list(groups),
        gpu_masks=masks,
        objective=_objective(groups, masks),
        solver_name="greedy",
    )


def greedy_with_repair(
    groups: list[NeuronGroup],
    machine: MachineSpec,
    gpu_budget_bytes: float,
    batch_size: int = 64,
    max_rounds: int = 8,
) -> PlacementPolicy:
    """Greedy placement that respects the communication constraint.

    Iteratively: fill greedily, then find groups whose GPU-resident neuron
    count is positive but below ``C_l`` (Inequality 4); bar the worst
    offender from the GPU and refill with the freed budget.  Converges in
    at most ``len(groups)`` rounds (each round freezes one more group).
    """
    thresholds = [communication_threshold(g, machine) for g in groups]
    frozen: set[int] = set()
    masks = _fill_by_impact(groups, gpu_budget_bytes, batch_size, frozen)
    for _ in range(max_rounds):
        violations = [
            gi
            for gi, (mask, c_l) in enumerate(zip(masks, thresholds))
            if 0 < int(mask.sum()) < c_l
        ]
        if not violations:
            break
        # Freeze the violating group with the least impact on the GPU.
        worst = min(
            violations, key=lambda gi: float(groups[gi].impacts[masks[gi]].sum())
        )
        frozen.add(worst)
        masks = _fill_by_impact(groups, gpu_budget_bytes, batch_size, frozen)
    else:
        # Out of rounds: hard-drop any remaining violators.
        for gi, (mask, c_l) in enumerate(zip(masks, thresholds)):
            if 0 < int(mask.sum()) < c_l:
                masks[gi] = np.zeros_like(mask)
    return PlacementPolicy(
        groups=list(groups),
        gpu_masks=masks,
        objective=_objective(groups, masks),
        solver_name="greedy-repair",
    )
