"""Tests for the toy tokenizer."""

import pytest

from repro.models.tokenizer import ToyTokenizer


@pytest.fixture
def tok():
    return ToyTokenizer(vocab_size=128)


class TestEncode:
    def test_bos_prepended(self, tok):
        ids = tok.encode("hello world")
        assert ids[0] == ToyTokenizer.BOS_ID
        assert len(ids) == 3

    def test_no_bos_option(self, tok):
        assert len(tok.encode("hello", add_bos=False)) == 1

    def test_ids_within_vocab(self, tok):
        for token in tok.encode("a b c d e f g h"):
            assert 0 <= token < tok.vocab_size

    def test_stable_across_instances(self):
        a = ToyTokenizer(128).encode("stable mapping test")
        b = ToyTokenizer(128).encode("stable mapping test")
        assert a == b

    def test_same_word_same_id(self, tok):
        ids = tok.encode("ping ping ping", add_bos=False)
        assert len(set(ids)) == 1


class TestDecode:
    def test_round_trip_for_seen_text(self, tok):
        text = "the quick brown fox"
        assert tok.decode(tok.encode(text)) == text

    def test_eos_truncates(self, tok):
        ids = tok.encode("hello world", add_bos=False)
        ids.insert(1, ToyTokenizer.EOS_ID)
        assert tok.decode(ids) == "hello"

    def test_unknown_token_rendered(self, tok):
        assert tok.decode([99]) == "<99>"

    def test_pad_skipped(self, tok):
        ids = [ToyTokenizer.PAD_ID] + tok.encode("x", add_bos=False)
        assert tok.decode(ids) == "x"


class TestValidation:
    def test_tiny_vocab_rejected(self):
        with pytest.raises(ValueError):
            ToyTokenizer(vocab_size=3)
