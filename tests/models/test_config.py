"""Tests for model architecture configs and the neuron abstraction."""

import pytest

from repro.models.config import (
    FALCON_40B,
    LLAMA_70B,
    MODEL_PRESETS,
    OPT_30B,
    OPT_66B,
    OPT_175B,
    Activation,
    ModelConfig,
    tiny_config,
)
from repro.quant.formats import FP16, INT4


class TestParameterCounts:
    @pytest.mark.parametrize(
        "preset,expected_b,tol",
        [
            (OPT_30B, 30.0, 0.05),
            (OPT_66B, 66.0, 0.06),
            (OPT_175B, 175.0, 0.03),
            (FALCON_40B, 40.0, 0.08),
            (LLAMA_70B, 70.0, 0.05),
        ],
    )
    def test_presets_match_nominal_sizes(self, preset, expected_b, tol):
        actual_b = preset.total_params / 1e9
        assert actual_b == pytest.approx(expected_b, rel=tol)

    def test_opt_175b_fp16_is_about_350gb(self):
        # Section 5.2: OPT-175B "needs 350GB of storage".
        assert OPT_175B.weight_bytes(FP16) == pytest.approx(350e9, rel=0.02)

    def test_int4_shrinks_by_factor(self):
        ratio = OPT_30B.weight_bytes(INT4) / OPT_30B.weight_bytes(FP16)
        assert ratio == pytest.approx(0.625 / 2.0)

    def test_layer_params_decompose(self):
        cfg = OPT_30B
        assert cfg.params_per_layer == (
            cfg.attn_params_per_layer + cfg.mlp_params_per_layer
        )
        assert cfg.total_params == (
            cfg.n_layers * cfg.params_per_layer + cfg.embedding_params
        )


class TestNeuronAbstraction:
    def test_mlp_neurons_cover_mlp_params(self):
        cfg = OPT_30B
        assert (
            cfg.mlp_neurons_per_layer * cfg.mlp_neuron_params
            == cfg.mlp_params_per_layer
        )

    def test_attn_neurons_cover_attn_params(self):
        for cfg in (OPT_30B, FALCON_40B, LLAMA_70B):
            total = cfg.attn_neurons_per_layer * cfg.attn_neuron_params
            assert total == pytest.approx(cfg.attn_params_per_layer, rel=1e-6)

    def test_reglu_has_three_matrices(self):
        assert LLAMA_70B.mlp_matrices == 3
        assert OPT_30B.mlp_matrices == 2

    def test_gqa_shrinks_kv(self):
        assert LLAMA_70B.kv_dim == LLAMA_70B.n_kv_heads * LLAMA_70B.head_dim
        assert LLAMA_70B.kv_dim < LLAMA_70B.d_model

    def test_kv_cache_bytes_per_token(self):
        cfg = tiny_config()
        expected = FP16.nbytes(2 * cfg.kv_dim * cfg.n_layers)
        assert cfg.kv_cache_bytes_per_token(FP16) == expected


class TestValidation:
    def test_heads_must_divide_d_model(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig(name="bad", n_layers=1, d_model=100, d_ffn=256, n_heads=3)

    def test_kv_heads_must_divide_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig(
                name="bad", n_layers=1, d_model=64, d_ffn=256, n_heads=4, n_kv_heads=3
            )

    def test_unknown_activation(self):
        with pytest.raises(ValueError, match="activation"):
            ModelConfig(
                name="bad",
                n_layers=1,
                d_model=64,
                d_ffn=256,
                n_heads=4,
                activation="gelu",
            )

    def test_kv_heads_default_to_heads(self):
        cfg = tiny_config()
        assert cfg.n_kv_heads == cfg.n_heads

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(name="bad", n_layers=0, d_model=64, d_ffn=256, n_heads=4)


class TestPresets:
    def test_all_presets_registered(self):
        assert set(MODEL_PRESETS) == {
            "opt-6.7b",
            "opt-13b",
            "opt-30b",
            "opt-66b",
            "opt-175b",
            "falcon-40b",
            "llama-70b",
        }

    def test_paper_model_families(self):
        assert MODEL_PRESETS["llama-70b"].activation == Activation.REGLU
        assert MODEL_PRESETS["falcon-40b"].activation == Activation.RELU

    def test_with_name(self):
        renamed = OPT_30B.with_name("opt-30b-copy")
        assert renamed.name == "opt-30b-copy"
        assert renamed.total_params == OPT_30B.total_params
