"""Tests for impact metric and neuron batching."""

import numpy as np
import pytest

from repro.solver.batching import batch_neurons
from repro.solver.impact import neuron_impact


class TestImpact:
    def test_impact_is_frequency(self, rng):
        freqs = rng.random(100)
        assert np.array_equal(neuron_impact(freqs), freqs)

    def test_impact_copies(self, rng):
        freqs = rng.random(10)
        impact = neuron_impact(freqs)
        impact[0] = -99
        assert freqs[0] != -99

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            neuron_impact(np.array([-1.0]))

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            neuron_impact(np.array([]))
        with pytest.raises(ValueError):
            neuron_impact(np.ones((2, 2)))


class TestBatching:
    def test_every_neuron_in_exactly_one_batch(self, rng):
        impacts = rng.random(300)
        batches = batch_neurons(impacts, neuron_bytes=10.0, batch_size=64)
        all_idx = np.concatenate([b.neuron_indices for b in batches])
        assert sorted(all_idx.tolist()) == list(range(300))

    def test_batches_group_similar_impacts(self, rng):
        impacts = rng.random(256)
        batches = batch_neurons(impacts, 10.0, batch_size=64)
        # Batches ordered by descending impact: every member of batch k has
        # impact >= every member of batch k+1.
        for a, b in zip(batches, batches[1:]):
            assert impacts[a.neuron_indices].min() >= impacts[b.neuron_indices].max() - 1e-12

    def test_batch_sizes(self, rng):
        batches = batch_neurons(rng.random(130), 10.0, batch_size=64)
        assert [b.size for b in batches] == [64, 64, 2]

    def test_impact_and_bytes_sums(self, rng):
        impacts = rng.random(100)
        batches = batch_neurons(impacts, neuron_bytes=7.0, batch_size=32)
        assert sum(b.impact for b in batches) == pytest.approx(impacts.sum())
        assert sum(b.nbytes for b in batches) == pytest.approx(100 * 7.0)

    def test_paper_batch_size_default(self, rng):
        # Section 6.3.3: 64 neurons per batch shrinks millions to tens of
        # thousands of variables.
        impacts = rng.random(28672)
        batches = batch_neurons(impacts, 10.0)
        assert len(batches) == 28672 // 64

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            batch_neurons(rng.random(10), 10.0, batch_size=0)
        with pytest.raises(ValueError):
            batch_neurons(rng.random(10), 0.0)
        with pytest.raises(ValueError):
            batch_neurons(np.array([]), 1.0)
