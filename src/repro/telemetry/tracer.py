"""Typed event tracing for the simulated engine and server.

PowerInfer's performance story is about *where time goes* — GPU vs. CPU
vs. PCIe occupancy, request lifecycles, fault windows.  End-of-run
aggregates (:class:`~repro.serving.metrics.ContinuousReport`) cannot show
*why* a schedule is slow; a timeline can.  This module records one:

* :class:`TaskSpan` — one simulated operator occupying a device lane
  (``gpu`` / ``cpu`` / ``pcie``) for ``[start, end)``, tagged with the
  operator category the engines already attach to their DAG tasks.
* :class:`RequestSpan` / :class:`RequestEvent` — per-request lifecycle:
  a ``queued`` → ``prefill`` → ``decode`` span chain plus instant events
  (``arrive``, ``admit``, ``first_token``, ``finish``, ``timeout``,
  ``shed``, ``abort``, ``requeue``, ``fail``).
* :class:`Region` / :class:`Instant` — named windows and markers on
  annotation lanes: server iterations, degraded-mode windows, fault
  epochs (:func:`record_fault_schedule`).
* :class:`CounterSample` — sampled time-series (queue depth, running
  batch, KV-pool bytes, per-device busy fraction).

The :class:`Tracer` is **opt-in and zero-cost when absent**: every
instrumented call site takes ``tracer=None`` by default and guards with
``tracer is not None and tracer.enabled``, so the untraced hot path costs
one pointer comparison and produces bit-identical results.
:class:`NullTracer` (``enabled = False``) is a drop-in sink for callers
that prefer passing an object over ``None``.

All times are seconds of simulated time.  Exporters
(:mod:`repro.telemetry.exporters`) render the recorded events as Chrome
``trace_event`` JSON (open in Perfetto / chrome://tracing) or JSONL; see
docs/observability.md for the schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.serving.metrics import merge_busy_intervals
from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.hardware.costmodel import TaskCost
    from repro.hardware.events import ScheduleResult
    from repro.hardware.faults import FaultSchedule

__all__ = [
    "RequestPhase",
    "TaskSpan",
    "RequestSpan",
    "RequestEvent",
    "Region",
    "Instant",
    "CounterSample",
    "Tracer",
    "NullTracer",
    "record_fault_schedule",
]


class RequestPhase:
    """Lifecycle phases a request span can cover."""

    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"

    ALL = (QUEUED, PREFILL, DECODE)


@dataclass(frozen=True)
class TaskSpan:
    """One operator task occupying a device lane for ``[start, end)``.

    ``cost`` carries the engine's structured roofline terms
    (:class:`~repro.hardware.costmodel.TaskCost`) when the scheduled task
    had them attached — the attribution layer decomposes and re-prices
    spans through it.  ``None`` for spans recorded without cost data.
    """

    name: str
    lane: str
    start: float
    end: float
    tag: str = ""
    iteration: int | None = None
    cost: "TaskCost | None" = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span {self.name!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RequestSpan:
    """One lifecycle phase of one request."""

    request_id: int
    phase: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.phase not in RequestPhase.ALL:
            raise ValueError(
                f"unknown request phase {self.phase!r}; choose from {RequestPhase.ALL}"
            )
        if self.end < self.start:
            raise ValueError(f"request {self.request_id} span ends before it starts")


@dataclass(frozen=True)
class RequestEvent:
    """An instant lifecycle event of one request.

    ``hop`` is the fleet dispatch-attempt counter the event happened
    under (see :class:`~repro.telemetry.fleet.TraceContext`); ``None``
    for single-server runs, where there is no routing to disambiguate.
    """

    request_id: int
    kind: str
    time: float
    hop: int | None = None


@dataclass(frozen=True)
class Region:
    """A named window on an annotation lane (iteration, fault, degraded)."""

    lane: str
    name: str
    start: float
    end: float
    args: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"region {self.name!r} ends before it starts")


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker on an annotation lane."""

    lane: str
    name: str
    time: float
    args: Mapping[str, float] | None = None


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named time-series."""

    series: str
    time: float
    value: float


class Tracer:
    """Collects typed telemetry events from an instrumented simulation.

    One tracer observes one run.  Recording methods append; query helpers
    (:meth:`device_busy`, :meth:`busy_union`, :meth:`counter_series`)
    aggregate for reconciliation and reporting; exporters consume the raw
    event lists directly.

    Attributes:
        metrics: A :class:`~repro.telemetry.metrics.MetricsRegistry` the
            instrumented code populates alongside the event stream.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.task_spans: list[TaskSpan] = []
        self.request_spans: list[RequestSpan] = []
        self.request_events: list[RequestEvent] = []
        self.regions: list[Region] = []
        self.instants: list[Instant] = []
        self.counters: list[CounterSample] = []
        self.metrics = MetricsRegistry()

    # ---- recording -------------------------------------------------------------

    def add_task(
        self,
        name: str,
        lane: str,
        start: float,
        end: float,
        tag: str = "",
        iteration: int | None = None,
        cost: "TaskCost | None" = None,
    ) -> None:
        self.task_spans.append(TaskSpan(name, lane, start, end, tag, iteration, cost))

    def add_schedule(
        self, result: "ScheduleResult", t0: float = 0.0, iteration: int | None = None
    ) -> None:
        """Record every task of a simulated DAG, shifted to start at ``t0``.

        This is how engine-level schedules (whose own clock starts at zero)
        land on the server's global timeline.
        """
        for task in result.tasks.values():
            self.task_spans.append(
                TaskSpan(
                    name=task.name,
                    lane=task.resource,
                    start=t0 + task.start,
                    end=t0 + task.end,
                    tag=task.tag,
                    iteration=iteration,
                    cost=task.cost,
                )
            )

    def add_request_span(
        self, request_id: int, phase: str, start: float, end: float
    ) -> None:
        self.request_spans.append(RequestSpan(request_id, phase, start, end))

    def add_request_event(
        self, request_id: int, kind: str, time: float, hop: int | None = None
    ) -> None:
        self.request_events.append(RequestEvent(request_id, kind, time, hop))

    def add_region(
        self,
        lane: str,
        name: str,
        start: float,
        end: float,
        args: Mapping[str, float] | None = None,
    ) -> None:
        self.regions.append(Region(lane, name, start, end, args))

    def add_instant(
        self,
        lane: str,
        name: str,
        time: float,
        args: Mapping[str, float] | None = None,
    ) -> None:
        self.instants.append(Instant(lane, name, time, args))

    def add_counter(self, series: str, time: float, value: float) -> None:
        self.counters.append(CounterSample(series, time, float(value)))

    # ---- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        """Total recorded events across all types."""
        return (
            len(self.task_spans)
            + len(self.request_spans)
            + len(self.request_events)
            + len(self.regions)
            + len(self.instants)
            + len(self.counters)
        )

    @property
    def lanes(self) -> tuple[str, ...]:
        """Device lanes observed, sorted."""
        return tuple(sorted({s.lane for s in self.task_spans}))

    def device_busy(self) -> dict[str, float]:
        """Merged busy seconds per device lane (overlaps never double-count)."""
        by_lane: dict[str, list[tuple[float, float]]] = {}
        for span in self.task_spans:
            by_lane.setdefault(span.lane, []).append((span.start, span.end))
        return {
            lane: merge_busy_intervals(spans)
            for lane, spans in sorted(by_lane.items())
        }

    def busy_union(self) -> float:
        """Seconds during which *any* device lane was executing a task."""
        return merge_busy_intervals((s.start, s.end) for s in self.task_spans)

    def counter_series(self, series: str) -> list[tuple[float, float]]:
        """All ``(time, value)`` samples of one series, in recording order."""
        return [(c.time, c.value) for c in self.counters if c.series == series]

    def regions_on(self, lane: str) -> list[Region]:
        """All regions recorded on one annotation lane."""
        return [r for r in self.regions if r.lane == lane]


class NullTracer(Tracer):
    """A tracer that records nothing — a drop-in sink for untraced runs.

    Call sites that guard on ``tracer.enabled`` skip their instrumentation
    entirely; anything that calls a recording method anyway hits a no-op.
    """

    enabled = False

    def add_task(self, *args, **kwargs) -> None:  # noqa: D102 - no-op sink
        return None

    def add_schedule(self, *args, **kwargs) -> None:
        return None

    def add_request_span(self, *args, **kwargs) -> None:
        return None

    def add_request_event(self, *args, **kwargs) -> None:
        return None

    def add_region(self, *args, **kwargs) -> None:
        return None

    def add_instant(self, *args, **kwargs) -> None:
        return None

    def add_counter(self, *args, **kwargs) -> None:
        return None


def record_fault_schedule(tracer: Tracer, faults: "FaultSchedule") -> None:
    """Annotate a tracer with a fault schedule's windows and epoch marks.

    Every fault event becomes a region on the ``faults`` lane (named by
    its kind, magnitude in the args) and every epoch boundary an instant
    marker, so traces line up visually with the timeline the server ran
    under.
    """
    for event in faults.events:
        tracer.add_region(
            "faults",
            event.kind,
            event.start,
            event.end,
            args={"magnitude": event.magnitude},
        )
    for boundary in faults.boundaries:
        tracer.add_instant("faults", "epoch", boundary)
