"""Seed-provenance dataflow: every Generator must trace to a seed.

Bit-identical replay — the property every bench baseline, chaos
scenario, and the upcoming vectorized event loop depend on — holds only
if every ``numpy.random.Generator`` in the tree derives from an explicit
seed.  The per-file linter already catches the syntactic case
(``default_rng()`` with no argument); this pass proves the semantic one
by chasing each creation site's seed expression backwards through the
project call graph:

* ``rng-ambient`` — a Generator created at module scope is ambient
  global state: import order becomes part of the replay contract.
* ``rng-unseeded`` — a creation site whose seed argument is missing or
  literally ``None`` draws OS entropy.
* ``rng-untracked-seed`` — the seed expression could not be proven to
  derive from an explicit seed parameter, a seed-named config field, a
  literal, or another tracked Generator.

An expression is *deterministic* if it is a literal; arithmetic over
deterministic parts; a name or attribute whose identifier is seed-ish
(contains ``seed``, e.g. ``seed``, ``SEED``, ``fault_seed``,
``self.config.seed``); a ``SeedSequence``/``spawn``/``integers`` draw
from a tracked source; a local bound to a deterministic expression; a
parameter that is seed-named or ``Generator``-annotated (the provenance
obligation moves to the caller); or a plain parameter whose *every*
call-site argument is itself deterministic — the interprocedural step
that catches seeds laundered through helpers the graph cannot vouch
for.
"""

from __future__ import annotations

import ast

from repro.check.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    bind_args,
    dotted_name,
)
from repro.check.lint import LintViolation

__all__ = ["check_provenance"]

# Fully-qualified callables that construct a Generator (or the bit
# generators one wraps).  SeedSequence is handled as a *seed source*.
_GENERATOR_MAKERS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
}
_SEED_SOURCES = {"numpy.random.SeedSequence"}
_GENERATOR_ANNOTATIONS = {"Generator", "SeedSequence", "BitGenerator"}
_DERIVING_METHODS = {"integers", "spawn", "choice", "random", "bit_generator"}
_DETERMINISTIC_BUILTINS = {"int", "abs", "sum", "tuple", "list", "sorted"}

_MAX_DEPTH = 8


def _is_seedish(identifier: str) -> bool:
    return "seed" in identifier.lower()


def _qualify(module: ModuleInfo, chain: str) -> str:
    head, _, rest = chain.partition(".")
    target = module.imports.get(head)
    if target is None:
        return chain
    return target + ("." + rest if rest else "")


def _local_bindings(func: FunctionInfo) -> dict[str, ast.expr]:
    """name -> last simple assignment expression in the function body."""
    bindings: dict[str, ast.expr] = {}
    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                bindings[node.target.id] = node.value
    return bindings


class _ProvenanceChecker:
    def __init__(self, index: ProjectIndex, graph: CallGraph):
        self.index = index
        self.graph = graph
        self.violations: list[LintViolation] = []
        self._local_cache: dict[str, dict[str, ast.expr]] = {}

    # -- entry --------------------------------------------------------
    def run(self) -> list[LintViolation]:
        for module in self.index.modules.values():
            self._walk_module(module)
        return self.violations

    def _walk_module(self, module: ModuleInfo) -> None:
        # Recursive walk tracking the enclosing function, mirroring the
        # qualname scheme the index used.
        self._walk_body(module, module.tree.body, None, None, depth=0)

    def _walk_body(
        self,
        module: ModuleInfo,
        body: list[ast.stmt],
        func: FunctionInfo | None,
        cls: ClassInfo | None,
        depth: int,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = self._function_for(module, stmt, func, cls, depth)
                self._walk_body(
                    module, stmt.body, inner or func, cls, depth + 1
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                inner_cls = module.classes.get(stmt.name) if depth == 0 else None
                self._walk_body(module, stmt.body, func, inner_cls, depth)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._check_call(module, node, func)

    def _function_for(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        enclosing: FunctionInfo | None,
        cls: ClassInfo | None,
        depth: int,
    ) -> FunctionInfo | None:
        if enclosing is None and depth == 0:
            tail = f"{cls.name}.{node.name}" if cls else node.name
        else:
            tail = f"<locals>.{node.name}@{node.lineno}"
        return self.index.functions.get(f"{module.name}:{tail}")

    # -- creation sites -----------------------------------------------
    def _check_call(
        self, module: ModuleInfo, node: ast.Call, func: FunctionInfo | None
    ) -> None:
        chain = dotted_name(node.func)
        if chain is None:
            return
        qualified = _qualify(module, chain)
        if qualified not in _GENERATOR_MAKERS:
            return
        where = f"{module.name}" + (f":{func.name}" if func else " (module scope)")
        if func is None:
            self.violations.append(
                self._violation(
                    "rng-ambient",
                    module,
                    node,
                    f"Generator created at module scope in {module.name}; "
                    "ambient RNG state makes import order part of the "
                    "replay contract — create it inside the consumer with "
                    "an explicit seed",
                )
            )
        seed = self._seed_argument(node)
        if seed is None or (
            isinstance(seed, ast.Constant) and seed.value is None
        ):
            self.violations.append(
                self._violation(
                    "rng-unseeded",
                    module,
                    node,
                    f"Generator created without a seed in {where}; this "
                    "draws OS entropy and cannot replay",
                )
            )
            return
        if func is None:
            return  # already reported as ambient; seed may still be fine
        ok, reason = self._deterministic(seed, module, func, set(), 0)
        if not ok:
            src = ast.unparse(seed)
            if len(src) > 60:
                src = src[:57] + "..."
            self.violations.append(
                self._violation(
                    "rng-untracked-seed",
                    module,
                    node,
                    f"seed expression '{src}' in {where} has no provable "
                    f"provenance from an explicit seed ({reason})",
                )
            )

    @staticmethod
    def _seed_argument(node: ast.Call) -> ast.expr | None:
        if node.args and not isinstance(node.args[0], ast.Starred):
            return node.args[0]
        for kw in node.keywords:
            if kw.arg == "seed":
                return kw.value
        return None

    def _violation(
        self, rule: str, module: ModuleInfo, node: ast.AST, message: str
    ) -> LintViolation:
        return LintViolation(
            rule=rule,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    # -- determinism proof --------------------------------------------
    def _deterministic(
        self,
        expr: ast.expr,
        module: ModuleInfo,
        func: FunctionInfo | None,
        visited: set[tuple[str, str]],
        depth: int,
    ) -> tuple[bool, str]:
        if depth > _MAX_DEPTH:
            return False, "proof depth exceeded"
        if isinstance(expr, ast.Constant):
            return True, "literal"
        if isinstance(expr, (ast.Tuple, ast.List)):
            for elt in expr.elts:
                ok, reason = self._deterministic(elt, module, func, visited, depth + 1)
                if not ok:
                    return False, reason
            return True, "literal sequence"
        if isinstance(expr, ast.Name):
            return self._deterministic_name(expr.id, module, func, visited, depth)
        if isinstance(expr, ast.Attribute):
            if _is_seedish(expr.attr):
                return True, f"seed-named field '{expr.attr}'"
            chain = dotted_name(expr)
            if chain is not None:
                head, _, rest = chain.partition(".")
                target_name = module.imports.get(head)
                if target_name is not None and rest and "." not in rest:
                    target = self.index.modules.get(target_name)
                    if target is not None and rest in target.constants:
                        return self._deterministic(
                            target.constants[rest], target, None, visited, depth + 1
                        )
            return False, f"attribute '{expr.attr}' is not seed-named"
        if isinstance(expr, ast.BinOp):
            for side in (expr.left, expr.right):
                ok, reason = self._deterministic(side, module, func, visited, depth + 1)
                if not ok:
                    return False, reason
            return True, "arithmetic over deterministic parts"
        if isinstance(expr, ast.UnaryOp):
            return self._deterministic(expr.operand, module, func, visited, depth + 1)
        if isinstance(expr, ast.Call):
            return self._deterministic_call(expr, module, func, visited, depth)
        if isinstance(expr, ast.IfExp):
            for side in (expr.body, expr.orelse):
                ok, reason = self._deterministic(side, module, func, visited, depth + 1)
                if not ok:
                    return False, reason
            return True, "both conditional branches deterministic"
        return False, f"unhandled expression {type(expr).__name__}"

    def _deterministic_name(
        self,
        name: str,
        module: ModuleInfo,
        func: FunctionInfo | None,
        visited: set[tuple[str, str]],
        depth: int,
    ) -> tuple[bool, str]:
        if _is_seedish(name):
            return True, f"seed-named value '{name}'"
        if func is not None:
            param = next((p for p in func.params if p.name == name), None)
            if param is not None:
                return self._deterministic_param(func, param.name, visited, depth)
            bindings = self._local_cache.setdefault(
                func.qualname, _local_bindings(func)
            )
            if name in bindings:
                return self._deterministic(
                    bindings[name], module, func, visited, depth + 1
                )
        if name in module.constants:
            return self._deterministic(
                module.constants[name], module, None, visited, depth + 1
            )
        return False, f"'{name}' has no visible deterministic binding"

    def _deterministic_param(
        self,
        func: FunctionInfo,
        param_name: str,
        visited: set[tuple[str, str]],
        depth: int,
    ) -> tuple[bool, str]:
        param = next(p for p in func.params if p.name == param_name)
        if _is_seedish(param_name):
            return True, f"explicit seed parameter '{param_name}'"
        if param.annotation in _GENERATOR_ANNOTATIONS:
            return True, f"parameter '{param_name}' is a tracked {param.annotation}"
        key = (func.qualname, param_name)
        if key in visited:
            return False, f"recursive provenance through '{param_name}'"
        visited.add(key)
        sites = self.graph.callers_of.get(func.qualname, [])
        if not sites:
            return False, (
                f"parameter '{param_name}' of {func.qualname} is not "
                "seed-named and has no resolvable call sites"
            )
        for site in sites:
            caller = (
                self.index.functions.get(site.caller) if site.caller else None
            )
            caller_module = self.index.modules[site.module]
            bound = bind_args(
                func,
                site.node,
                skip_self=func.cls is not None
                and isinstance(site.node.func, ast.Attribute),
            )
            arg = bound.get(param_name, param.default)
            if arg is None:
                return False, (
                    f"call site {site.module}:{site.node.lineno} leaves "
                    f"'{param_name}' unbound"
                )
            ok, reason = self._deterministic(
                arg, caller_module, caller, visited, depth + 1
            )
            if not ok:
                return False, (
                    f"call site {site.module}:{site.node.lineno} passes "
                    f"'{param_name}' = non-deterministic value ({reason})"
                )
        return True, f"all {len(sites)} call site(s) pass deterministic values"

    def _deterministic_call(
        self,
        expr: ast.Call,
        module: ModuleInfo,
        func: FunctionInfo | None,
        visited: set[tuple[str, str]],
        depth: int,
    ) -> tuple[bool, str]:
        chain = dotted_name(expr.func)
        if chain is not None:
            qualified = _qualify(module, chain)
            if qualified in _SEED_SOURCES:
                for arg in expr.args:
                    ok, reason = self._deterministic(
                        arg, module, func, visited, depth + 1
                    )
                    if not ok:
                        return False, reason
                return True, "SeedSequence over deterministic parts"
            if chain in _DETERMINISTIC_BUILTINS:
                for arg in expr.args:
                    ok, reason = self._deterministic(
                        arg, module, func, visited, depth + 1
                    )
                    if not ok:
                        return False, reason
                return True, f"{chain}() of deterministic parts"
        # Derivation from a tracked source: rng.integers(...), ss.spawn(n)
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _DERIVING_METHODS
        ):
            ok, _ = self._deterministic(
                expr.func.value, module, func, visited, depth + 1
            )
            if ok:
                return True, f"derived via .{expr.func.attr}() from a tracked source"
            return False, (
                f"receiver of .{expr.func.attr}() is not a tracked "
                "seed/Generator"
            )
        # Project helper: deterministic iff every return it can take is.
        if func is not None:
            resolved = self.graph.resolve_call(
                expr,
                module,
                func,
                self.index.class_named(func.cls) if func.cls else None,
            )
            if isinstance(resolved, FunctionInfo):
                return self._deterministic_return(resolved, visited, depth)
        return False, (
            f"call to '{ast.unparse(expr.func)}' is not a tracked seed source"
        )

    def _deterministic_return(
        self,
        func: FunctionInfo,
        visited: set[tuple[str, str]],
        depth: int,
    ) -> tuple[bool, str]:
        key = (func.qualname, "<return>")
        if key in visited:
            return False, f"recursive provenance through {func.qualname}"
        visited.add(key)
        module = self.index.modules.get(func.module)
        if module is None:
            return False, f"{func.qualname} is outside the indexed tree"
        returns = [
            node
            for node in ast.walk(func.node)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        if not returns:
            return False, f"{func.qualname} has no return value to trace"
        for ret in returns:
            ok, reason = self._deterministic(
                ret.value, module, func, visited, depth + 1
            )
            if not ok:
                return False, (
                    f"helper {func.qualname} returns a non-deterministic "
                    f"value ({reason})"
                )
        return True, f"helper {func.qualname} returns deterministic values"


def check_provenance(index: ProjectIndex, graph: CallGraph) -> list[LintViolation]:
    """Run the seed-provenance pass over every module."""
    return _ProvenanceChecker(index, graph).run()
