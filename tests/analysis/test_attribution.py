"""Attribution layer: time decomposition reconciles, critical path is sound."""

import pytest

from repro.analysis.attribution import (
    analyze_iteration,
    critical_path,
    decompose,
    decompose_spans,
    layer_of,
)
from repro.engine.base import RESOURCES
from repro.engine.powerinfer import PowerInferEngine
from repro.hardware.costmodel import COST_COMPONENTS
from repro.hardware.events import EventSimulator, SimTask
from repro.telemetry.tracer import Tracer


@pytest.fixture(scope="module")
def engine(mini_plan):
    return PowerInferEngine(mini_plan)


@pytest.fixture(scope="module")
def schedule(engine):
    tasks = engine.iteration_tasks(128, 1, 1)
    return tasks, EventSimulator(list(RESOURCES)).run(tasks)


def test_layer_of():
    assert layer_of("L12.mlp_gpu") == "L12"
    assert layer_of("L0.attn_merge") == "L0"
    assert layer_of("lm_head") == "other"
    assert layer_of("Lx.weird") == "other"
    assert layer_of("hidden_xfer.3") == "other"


class TestDecomposition:
    def test_reconciles_with_simulator_busy_time(self, schedule):
        _, result = schedule
        deco = decompose(result)
        assert deco.uncosted == 0.0
        assert deco.reconciliation_error(result.busy_time) <= 1e-6

    def test_groupings_agree(self, schedule):
        _, result = schedule
        deco = decompose(result)
        by_dev = deco.totals
        for buckets in (deco.by_tag, deco.by_layer):
            agg = {c: 0.0 for c in COST_COMPONENTS}
            for bucket in buckets.values():
                for name, sec in bucket.items():
                    agg[name] += sec
            for name in COST_COMPONENTS:
                assert agg[name] == pytest.approx(by_dev[name], rel=1e-12, abs=1e-15)

    def test_shares_sum_to_one(self, schedule):
        _, result = schedule
        shares = decompose(result).shares()
        assert set(shares) == set(COST_COMPONENTS)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(s >= 0.0 for s in shares.values())

    def test_as_rows(self, schedule):
        _, result = schedule
        rows = decompose(result).as_rows("device")
        assert {r["device"] for r in rows} >= {"gpu", "cpu"}
        for row in rows:
            assert row["total"] == pytest.approx(
                sum(row[c] for c in COST_COMPONENTS), rel=1e-12
            )

    def test_end_to_end_spans_reconcile(self, engine):
        """Acceptance bar: a traced end-to-end run reconciles to 1e-6."""
        tracer = Tracer()
        engine.simulate_request(16, 8, tracer=tracer)
        deco = decompose_spans(tracer.task_spans)
        assert deco.uncosted == 0.0
        assert deco.reconciliation_error(tracer.device_busy()) <= 1e-6

    def test_uncosted_spans_counted(self):
        sim = EventSimulator(["gpu"])
        result = sim.run([SimTask("raw", "gpu", 0.5)])
        deco = decompose(result)
        assert deco.uncosted == pytest.approx(0.5)
        assert deco.total_seconds == pytest.approx(0.5)


class TestCriticalPath:
    def test_path_spans_makespan_contiguously(self, schedule):
        tasks, result = schedule
        cp = critical_path(tasks, result)
        assert cp.segments, "critical path must be non-empty"
        assert cp.segments[0].start == 0.0
        assert cp.segments[0].gate == "start"
        assert cp.segments[-1].end == pytest.approx(result.makespan, rel=1e-12)
        for a, b in zip(cp.segments, cp.segments[1:]):
            assert a.end == b.start, f"gap between {a.name} and {b.name}"
        assert cp.length == pytest.approx(result.makespan, rel=1e-9)

    def test_gates_classified(self, schedule):
        tasks, result = schedule
        cp = critical_path(tasks, result)
        assert all(s.gate in ("start", "dependency", "resource") for s in cp.segments)
        # A multi-layer DAG has at least one true dependency edge on the path.
        assert any(s.gate == "dependency" for s in cp.segments)

    def test_slack_zero_on_path_nonnegative_off(self, schedule):
        tasks, result = schedule
        cp = critical_path(tasks, result)
        on_path = {s.name for s in cp.segments}
        for name in on_path:
            assert abs(cp.slack[name]) <= 1e-12 * max(result.makespan, 1.0)
        for name, slack in cp.slack.items():
            assert slack >= -1e-12 * max(result.makespan, 1.0)

    def test_gating_resource(self, schedule):
        tasks, result = schedule
        cp = critical_path(tasks, result)
        by_res = cp.time_by_resource()
        assert cp.gating_resource() in RESOURCES
        assert sum(by_res.values()) == pytest.approx(cp.length, rel=1e-12)

    def test_empty_schedule(self):
        cp = critical_path([], EventSimulator(["gpu"]).run([]))
        assert cp.segments == []
        assert cp.makespan == 0.0


def test_analyze_iteration_bundle(engine):
    analysis = analyze_iteration(engine, 64, 1)
    assert analysis.schedule.makespan > 0.0
    assert analysis.critical_path.makespan == analysis.schedule.makespan
    assert (
        analysis.decomposition.reconciliation_error(analysis.schedule.busy_time)
        <= 1e-6
    )
