"""Unified check report: one schema over lint + flow + verify-schedule.

The three check tools grew three ad-hoc report shapes: the linter's
``{rule, path, line, col}`` records, the flow passes' identical shape,
and the schedule validator's ``{check, task, time}`` records nested in
per-case documents.  ``repro check`` runs all three and merges them into
one document with one violation schema, so CI and humans consume a
single artifact:

* :class:`CheckViolation` — the shared violation record.  Static
  findings carry ``path``/``line``/``col``; dynamic findings carry
  ``case``/``task``/``time``.  ``tool`` says which pass emitted it.
* :class:`ToolReport` — one tool's outcome (ok flag, counts, findings).
* :class:`CheckReport` — the merged document: per-tool summaries plus
  the flat ordered violation list.

Exit-code contract (shared by ``repro lint`` / ``check-flow`` /
``check``): 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "CheckViolation",
    "ToolReport",
    "CheckReport",
    "run_check",
    "format_check_text",
    "check_to_json",
]


@dataclass(frozen=True)
class CheckViolation:
    """One finding from any check tool, in the merged schema."""

    tool: str  # "lint" | "flow" | "schedule"
    rule: str  # lint/flow rule id, or the schedule check name
    message: str
    path: str | None = None
    line: int | None = None
    col: int | None = None
    case: str | None = None  # verify-schedule case id
    task: str | None = None
    time: float | None = None

    def to_dict(self) -> dict:
        out: dict = {"tool": self.tool, "rule": self.rule, "message": self.message}
        for key in ("path", "line", "col", "case", "task", "time"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def format(self) -> str:
        if self.path is not None:
            where = f"{self.path}:{self.line}:{self.col}"
        else:
            where = self.case or "<run>"
            if self.task is not None:
                where += f" task={self.task}"
            if self.time is not None:
                where += f" t={self.time:.6g}s"
        return f"{where}: [{self.tool}] {self.rule}: {self.message}"


@dataclass
class ToolReport:
    """One tool's contribution to the merged report."""

    tool: str
    ok: bool
    violations: list[CheckViolation] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "tool": self.tool,
            "ok": self.ok,
            "n_violations": len(self.violations),
            **self.stats,
        }


@dataclass
class CheckReport:
    """Merged outcome of every tool ``repro check`` ran."""

    tools: list[ToolReport]

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.tools)

    @property
    def violations(self) -> list[CheckViolation]:
        out: list[CheckViolation] = []
        for tool in self.tools:
            out.extend(tool.violations)
        return out

    def to_dict(self) -> dict:
        violations = self.violations
        by_rule: dict[str, int] = {}
        for v in violations:
            by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
        return {
            "ok": self.ok,
            "n_violations": len(violations),
            "tools": {t.tool: t.to_dict() for t in self.tools},
            "by_rule": dict(sorted(by_rule.items())),
            "violations": [v.to_dict() for v in violations],
        }


# -- adapters -----------------------------------------------------------


def _lint_tool(paths: Sequence[Path | str], rules: Iterable[str] | None) -> ToolReport:
    from repro.check.lint import lint_paths

    violations, n_files = lint_paths(paths, rules=rules)
    return ToolReport(
        tool="lint",
        ok=not violations,
        violations=[
            CheckViolation(
                tool="lint",
                rule=v.rule,
                message=v.message,
                path=v.path,
                line=v.line,
                col=v.col,
            )
            for v in violations
        ],
        stats={"n_files": n_files},
    )


def _flow_tool(paths: Sequence[Path | str], rules: Iterable[str] | None) -> ToolReport:
    from repro.check.flow import run_flow

    report = run_flow(paths, rules=rules)
    return ToolReport(
        tool="flow",
        ok=report.ok,
        violations=[
            CheckViolation(
                tool="flow",
                rule=v.rule,
                message=v.message,
                path=v.path,
                line=v.line,
                col=v.col,
            )
            for v in report.violations
        ],
        stats={
            "n_files": report.n_files,
            "n_functions": report.n_functions,
            "n_call_edges": report.n_call_edges,
            "n_task_sites": report.n_task_sites,
        },
    )


def _schedule_tool(quick: bool) -> ToolReport:
    from repro.check.verify import run_verification

    document = run_verification(quick=quick)
    violations: list[CheckViolation] = []
    for case in document["cases"]:
        for v in case["violations"]:
            violations.append(
                CheckViolation(
                    tool="schedule",
                    rule=v["check"],
                    message=v["message"],
                    case=case["case"],
                    task=v.get("task"),
                    time=v.get("time"),
                )
            )
    return ToolReport(
        tool="schedule",
        ok=document["ok"],
        violations=violations,
        stats={
            "suite": document["suite"],
            "n_cases": document["n_cases"],
            "n_skipped": document["n_skipped"],
        },
    )


def run_check(
    paths: Sequence[Path | str],
    *,
    lint_rules: Iterable[str] | None = None,
    flow_rules: Iterable[str] | None = None,
    with_schedule: bool = True,
    quick: bool = True,
) -> CheckReport:
    """Run lint + check-flow (+ verify-schedule) and merge the reports.

    ``with_schedule=False`` skips the dynamic sweep (it simulates the
    whole bench grid, which is seconds of work vs. the static passes'
    milliseconds); ``quick`` selects the reduced verification grid.
    """
    tools = [_lint_tool(paths, lint_rules), _flow_tool(paths, flow_rules)]
    if with_schedule:
        tools.append(_schedule_tool(quick))
    return CheckReport(tools=tools)


def format_check_text(report: CheckReport) -> str:
    """Human-readable merged report."""
    lines: list[str] = []
    for tool in report.tools:
        stats = ", ".join(f"{k}={v}" for k, v in tool.stats.items())
        verdict = "ok" if tool.ok else "FAIL"
        lines.append(f"[{tool.tool}] {verdict}: {len(tool.violations)} "
                     f"violation(s) ({stats})")
    for v in report.violations:
        lines.append(f"  {v.format()}")
    verdict = "OK" if report.ok else "FAIL"
    lines.append(
        f"{verdict}: {len(report.violations)} violation(s) across "
        f"{len(report.tools)} tool(s)"
    )
    return "\n".join(lines)


def check_to_json(report: CheckReport) -> str:
    return json.dumps(report.to_dict(), indent=2) + "\n"
