"""SLO attainment under injected faults: graceful degradation vs naive.

Chaos benchmark for the continuous-batching server.  The same Poisson
stream runs through the same fault schedule (a 4x PCIe degradation window,
a KV-budget squeeze, a device stall) with degradation off and on; the
degradation-aware server must achieve strictly higher overall SLO
attainment, and the whole study must be bit-for-bit deterministic.

Also runnable directly for the CI smoke job::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --quick
"""

from repro.bench.fault_tolerance import run_fault_tolerance


def _check(rows: list[dict]) -> None:
    by_key = {(r["server"], r["faults"]): r for r in rows}
    naive = by_key[("naive", "chaos")]
    degraded = by_key[("degraded", "chaos")]

    # The headline claim (also asserted inside the driver): adapting to the
    # faults strictly beats suffering them at full batch.
    assert degraded["slo_attainment"] > naive["slo_attainment"]

    # The degradation measures actually engaged, and the fault windows did
    # real damage to the naive server.
    assert degraded["degraded_time_s"] > 0.0
    assert naive["degraded_time_s"] == 0.0
    assert naive["timed_out"] + naive["aborts"] > 0

    # Accounting: no request vanished (the driver raises otherwise), and
    # the degraded server recovered everything it retried.
    assert degraded["failed"] == 0


def test_fault_tolerance(benchmark, record_rows):
    from conftest import run_once

    rows = run_once(benchmark, run_fault_tolerance)
    record_rows(
        "fault_tolerance",
        rows,
        "Graceful degradation vs naive under faults — OPT-6.7B INT4 PC-Low",
    )
    _check(rows)

    # Determinism contract: replaying the identical fault seed and request
    # stream reproduces the report exactly.
    assert run_fault_tolerance() == rows


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the fault-free reference run (CI smoke configuration)",
    )
    cli_args = parser.parse_args()

    rows = run_fault_tolerance(quick=cli_args.quick)
    _check(rows)
    assert run_fault_tolerance(quick=cli_args.quick) == rows, "non-deterministic"
    for row in rows:
        print(row)
    print("fault-tolerance smoke: OK")
