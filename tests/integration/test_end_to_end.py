"""Cross-module integration tests: the full offline->online workflows."""

import numpy as np
import pytest

from repro.engine.baselines import LayerwiseSparseEngine, LlamaCppEngine
from repro.engine.numerical import NumericalHybridEngine
from repro.engine.powerinfer import PowerInferEngine
from repro.models.kvcache import KVCache
from repro.predictor.adaptive import adaptive_train
from repro.predictor.training import collect_training_data
from repro.profiler.datasets import c4_corpus
from repro.profiler.profiler import layer_statistics, profile_numerical
from repro.quant.formats import FP16
from repro.solver.greedy import greedy_placement
from repro.solver.placement import NeuronGroup


class TestNumericalPipeline:
    """Profile -> train predictors -> place -> serve, all on real numerics."""

    @pytest.fixture(scope="class")
    def pipeline(self, tiny_model, tiny_cfg):
        rng = np.random.default_rng(9)
        requests = list(c4_corpus().requests(16, tiny_cfg.vocab_size, rng))
        trace = profile_numerical(tiny_model, requests)
        stats = layer_statistics(trace)

        predictors = []
        for li in range(tiny_cfg.n_layers):
            x, y = collect_training_data(tiny_model, li, requests[:10])
            split = int(0.8 * x.shape[0])
            result = adaptive_train(
                x[:split], y[:split], x[split:], y[split:],
                layer_sparsity=stats[li].sparsity,
                layer_skewness=stats[li].skewness,
                rng=rng,
                accuracy_target=0.93,
                max_rounds=3,
                epochs=12,
            )
            predictors.append(result.predictor)

        groups = [
            NeuronGroup(
                name=f"layer{li}.mlp",
                impacts=trace.mlp_rates(li),
                neuron_bytes=float(tiny_cfg.mlp_neuron_bytes(FP16)),
            )
            for li in range(tiny_cfg.n_layers)
        ]
        budget = 0.4 * sum(g.total_bytes for g in groups)
        policy = greedy_placement(groups, budget)
        engine = NumericalHybridEngine(tiny_model, predictors, policy=policy)
        return trace, predictors, policy, engine

    def test_trace_covers_requested_tokens(self, pipeline):
        trace, *_ = pipeline
        assert trace.n_tokens > 100

    def test_predictors_meet_reasonable_accuracy(self, pipeline, tiny_model, tiny_cfg):
        _, predictors, _, _ = pipeline
        rng = np.random.default_rng(10)
        requests = [rng.integers(0, tiny_cfg.vocab_size, size=12) for _ in range(4)]
        for li, pred in enumerate(predictors):
            x, y = collect_training_data(tiny_model, li, requests)
            assert pred.evaluate(x, y).accuracy > 0.85

    def test_policy_targets_hot_neurons(self, pipeline):
        trace, _, policy, _ = pipeline
        # GPU-resident neurons are hotter on average than CPU-resident.
        for li, (group, mask) in enumerate(zip(policy.groups, policy.gpu_masks)):
            rates = trace.mlp_rates(li)
            if 0 < mask.sum() < mask.size:
                assert rates[mask].mean() > rates[~mask].mean()

    def test_sparse_serving_tracks_dense(self, pipeline, tiny_model, tiny_cfg):
        *_, engine = pipeline
        rng = np.random.default_rng(11)
        tokens = rng.integers(0, tiny_cfg.vocab_size, size=16)
        dense = tiny_model.forward(tokens, KVCache(tiny_cfg))
        sparse = engine.forward_logits(tokens)
        agreement = (dense.argmax(-1) == sparse.argmax(-1)).mean()
        assert agreement > 0.7
        assert engine.stats.neurons_gpu > 0
        assert engine.stats.neurons_cpu > 0
        assert engine.stats.neurons_skipped > 0


class TestPerformancePipeline:
    """Paper-shaped orderings on the mini performance setup."""

    def test_system_ordering_matches_paper(self, mini_plan, mini_plan_none):
        request = dict(input_len=16, output_len=32)
        powerinfer = PowerInferEngine(mini_plan).simulate_request(**request)
        po = LayerwiseSparseEngine(mini_plan_none).simulate_request(**request)
        llama = LlamaCppEngine(mini_plan_none).simulate_request(**request)
        # Figure 15's ordering: llama.cpp < +PO < PowerInfer.
        assert llama.tokens_per_second < po.tokens_per_second
        assert po.tokens_per_second < powerinfer.tokens_per_second

    def test_gpu_load_share_ordering(self, mini_plan, mini_plan_none):
        pi_share = PowerInferEngine(mini_plan).gpu_load_share()
        lc_share = LlamaCppEngine(mini_plan_none).gpu_load_share()
        # Figure 12: PowerInfer shifts neuron load onto the GPU.
        assert pi_share > lc_share

    def test_speedup_decays_with_batch(self, mini_plan, mini_plan_none):
        pi = PowerInferEngine(mini_plan)
        lc = LlamaCppEngine(mini_plan_none)

        def speedup(batch):
            a = pi.simulate_request(16, 32, batch=batch).tokens_per_second
            b = lc.simulate_request(16, 32, batch=batch).tokens_per_second
            return a / b

        # Figure 14: joint activations shrink the advantage.
        assert speedup(1) > speedup(32)

    def test_memory_report_consistent_with_masks(self, mini_plan):
        report = mini_plan.memory_report()
        assert report.gpu_used >= mini_plan.gpu_weight_bytes
        assert report.cpu_used >= mini_plan.cpu_weight_bytes

    def test_sampled_and_expected_modes_agree_on_average(self, mini_plan):
        engine = PowerInferEngine(mini_plan)
        expected = engine.simulate_iteration(8, 1).makespan
        rng = np.random.default_rng(0)
        sampled = np.mean(
            [engine.simulate_iteration(8, 1, rng=rng).makespan for _ in range(30)]
        )
        assert sampled == pytest.approx(expected, rel=0.15)
