"""Tests for dtype descriptors and memory accounting."""

import pytest

from repro.quant.formats import DTYPE_PRESETS, FP16, FP32, INT4, INT8, DType


class TestBytesPerParam:
    def test_fp32(self):
        assert FP32.bytes_per_param == 4.0

    def test_fp16(self):
        assert FP16.bytes_per_param == 2.0

    def test_int4_includes_group_metadata(self):
        # 0.5 payload + 4 bytes / 32-param group = 0.625 bytes/param.
        assert INT4.bytes_per_param == pytest.approx(0.625)

    def test_int8_includes_group_metadata(self):
        assert INT8.bytes_per_param == pytest.approx(1.0 + 2.0 / 32)

    def test_ordering(self):
        assert INT4.bytes_per_param < INT8.bytes_per_param < FP16.bytes_per_param


class TestNbytes:
    def test_nbytes_scales_linearly(self):
        assert FP16.nbytes(1000) == 2000.0

    def test_nbytes_rejects_negative(self):
        with pytest.raises(ValueError):
            FP16.nbytes(-1)

    def test_paper_opt_66b_int4_exceeds_24gb(self):
        # Intro: a 4-bit OPT-66B needs ~40 GB — more than an RTX 4090.
        nbytes = INT4.nbytes(66e9)
        assert nbytes > 24 * 2**30
        assert nbytes == pytest.approx(41.25e9, rel=0.01)


class TestValidation:
    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            DType(name="bad", bits=0)

    def test_rejects_negative_group_size(self):
        with pytest.raises(ValueError):
            DType(name="bad", bits=4, group_size=-1)

    def test_presets_by_name(self):
        assert DTYPE_PRESETS["fp16"] is FP16
        assert DTYPE_PRESETS["int4"] is INT4
