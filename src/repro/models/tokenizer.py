"""A deterministic toy tokenizer for examples and workload generation.

The reproduction has no trained vocabulary; examples and the numerical
substrate only need a stable text <-> token-id mapping.  ``ToyTokenizer``
hashes whitespace-separated words into a fixed-size id space (reserving ids
for BOS/EOS/PAD) and keeps a reverse table for round-tripping text it has
seen.
"""

from __future__ import annotations

__all__ = ["ToyTokenizer"]


class ToyTokenizer:
    """Hash-based word tokenizer over a fixed vocabulary size."""

    PAD_ID = 0
    BOS_ID = 1
    EOS_ID = 2
    _RESERVED = 3

    def __init__(self, vocab_size: int = 256) -> None:
        if vocab_size <= self._RESERVED:
            raise ValueError(f"vocab_size must exceed {self._RESERVED}")
        self.vocab_size = vocab_size
        self._id_to_word: dict[int, str] = {}

    def _word_id(self, word: str) -> int:
        span = self.vocab_size - self._RESERVED
        # FNV-1a for stable cross-run hashing (builtin hash() is salted).
        h = 2166136261
        for byte in word.encode("utf-8"):
            h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        token = self._RESERVED + h % span
        self._id_to_word.setdefault(token, word)
        return token

    def encode(self, text: str, add_bos: bool = True) -> list[int]:
        """Tokenize ``text`` into ids (words split on whitespace)."""
        ids = [self.BOS_ID] if add_bos else []
        ids.extend(self._word_id(w) for w in text.split())
        return ids

    def decode(self, ids: list[int]) -> str:
        """Best-effort inverse of :meth:`encode` for seen tokens."""
        words = []
        for token in ids:
            if token in (self.PAD_ID, self.BOS_ID):
                continue
            if token == self.EOS_ID:
                break
            words.append(self._id_to_word.get(token, f"<{token}>"))
        return " ".join(words)
