"""Tests for the operator registry."""

import numpy as np
import pytest

from repro.hardware.costmodel import OpWork
from repro.operators.registry import OPERATOR_REGISTRY, get_operator, list_operators


class TestRegistry:
    def test_catalog_covers_the_families(self):
        names = set(OPERATOR_REGISTRY)
        assert "dense_gemv" in names
        assert "neuron_gather_rows" in names
        assert "csr_spmv" in names
        assert "pit_gemv" in names
        assert len(names) >= 7

    def test_lookup(self):
        spec = get_operator("neuron_gather_rows")
        assert spec.sparsity_aware
        assert "gpu" in spec.devices and "cpu" in spec.devices

    def test_unknown_lists_known(self):
        with pytest.raises(KeyError, match="known"):
            get_operator("warp_speed_gemv")

    def test_filter_by_device(self):
        cpu_ops = list_operators(device="cpu")
        assert all("cpu" in s.devices for s in cpu_ops)
        assert any(s.name == "cpu_core_batched_gemv" for s in cpu_ops)
        gpu_only = list_operators(device="gpu")
        assert any(s.name == "pit_gemv" for s in gpu_only)

    def test_filter_by_sparsity(self):
        dense_ops = list_operators(sparsity_aware=False)
        assert [s.name for s in dense_ops] == ["dense_gemv"]

    def test_kernels_are_callable_and_work_fns_return_opwork(self, rng):
        spec = get_operator("neuron_gather_rows")
        weight = rng.standard_normal((8, 4)).astype(np.float32)
        x = rng.standard_normal(4).astype(np.float32)
        out = spec.kernel(weight, x, np.array([0, 3]))
        assert out.shape == (2,)
        assert isinstance(spec.work(2, 4), OpWork)

    def test_every_entry_documents_origin(self):
        for spec in OPERATOR_REGISTRY.values():
            assert spec.origin
