"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, main


class TestListing:
    def test_models_lists_presets(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "opt-30b" in out and "llama-70b" in out

    def test_machines_lists_presets(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "pc-high" in out and "rtx4090" in out


class TestSimulate:
    def test_simulate_prints_tokens_per_second(self, capsys):
        code = main(
            [
                "simulate",
                "--model", "opt-6.7b",
                "--machine", "pc-low",
                "--dtype", "int4",
                "--input", "16",
                "--output", "32",
            ]
        )
        assert code == 0
        assert "tokens/s" in capsys.readouterr().out

    def test_simulate_named_engine(self, capsys):
        code = main(
            [
                "simulate",
                "--model", "opt-6.7b",
                "--machine", "pc-low",
                "--dtype", "int4",
                "--engine", "llama.cpp",
            ]
        )
        assert code == 0
        assert "llama.cpp" in capsys.readouterr().out

    def test_oom_is_a_clean_error(self, capsys):
        code = main(
            ["simulate", "--model", "opt-175b", "--machine", "pc-low",
             "--dtype", "fp16"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_engine_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--model", "opt-6.7b", "--machine", "pc-low",
                  "--engine", "ghost"])


class TestPlan:
    def test_plan_saved_and_loadable(self, tmp_path, capsys):
        out = tmp_path / "plan.npz"
        code = main(
            [
                "plan",
                "--model", "opt-6.7b",
                "--machine", "pc-low",
                "--dtype", "int4",
                "--policy", "greedy",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        from repro.engine.plan_io import load_plan

        assert load_plan(out).model.name == "opt-6.7b"


class TestFigure:
    def test_registry_covers_every_experiment(self):
        # 16 paper experiments + 6 ablations + 2 serving studies
        assert len(FIGURES) == 24
        assert "continuous-batching" in FIGURES
        assert "fault-tolerance" in FIGURES

    def test_figure_runs_and_prints_table(self, capsys):
        assert main(["figure", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "direct_execute_ms" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
