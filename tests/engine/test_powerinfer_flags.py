"""Tests for PowerInferEngine configuration flags."""

import copy

import numpy as np
import pytest

from repro.engine.powerinfer import PowerInferEngine


class TestSelectiveSyncFlag:
    @pytest.fixture(scope="class")
    def all_gpu_plan(self, mini_plan):
        plan = copy.copy(mini_plan)
        plan.mlp_gpu_masks = [np.ones_like(m) for m in mini_plan.mlp_gpu_masks]
        plan.attn_gpu_masks = [np.ones_like(m) for m in mini_plan.attn_gpu_masks]
        return plan

    def test_selective_sync_elides_transfers_when_gpu_resident(self, all_gpu_plan):
        on = PowerInferEngine(all_gpu_plan, selective_sync=True)
        names_on = {t.name for t in on.iteration_tasks(0, 1, 1)}
        assert not any(".mlp_xfer" in n for n in names_on)

    def test_disabled_selective_sync_always_pays(self, all_gpu_plan):
        off = PowerInferEngine(all_gpu_plan, selective_sync=False)
        names_off = {t.name for t in off.iteration_tasks(0, 1, 1)}
        assert any(".mlp_xfer" in n for n in names_off)
        assert any(".mlp_cpu" in n for n in names_off)

    def test_selective_sync_is_never_slower(self, all_gpu_plan):
        on = PowerInferEngine(all_gpu_plan, selective_sync=True)
        off = PowerInferEngine(all_gpu_plan, selective_sync=False)
        assert (
            on.simulate_iteration(8, 1).makespan
            <= off.simulate_iteration(8, 1).makespan
        )

    def test_flag_has_no_effect_when_cpu_always_busy(self, mini_plan):
        # The split mini plan has activated CPU neurons in (virtually)
        # every layer under expectation mode: both variants sync anyway.
        on = PowerInferEngine(mini_plan, selective_sync=True)
        off = PowerInferEngine(mini_plan, selective_sync=False)
        assert on.simulate_iteration(8, 1).makespan == pytest.approx(
            off.simulate_iteration(8, 1).makespan, rel=1e-9
        )
