"""Doctored-fixture tests: each dimension rule fires at its exact site.

Every test plants a minimal fixture module in a temp directory, runs the
interprocedural flow analysis over it, and asserts the *precise* rule
name and line — plus a near-identical clean twin that must stay silent,
pinning the rule's edges (literal wildcards, Ratio transparency,
interprocedural argument checking).
"""

from pathlib import Path

import pytest

from repro.check.flow import run_flow

REPO_ROOT = Path(__file__).resolve().parents[2]


def flow(tmp_path: Path, source: str, name: str = "fixture.py", rules=None):
    (tmp_path / name).write_text(source)
    report = run_flow([tmp_path], rules=rules)
    return [(v.rule, v.line) for v in report.violations]


class TestDimAddMix:
    def test_seconds_plus_bytes_fires(self, tmp_path):
        src = (
            "from repro.units import Bytes, Seconds\n"
            "\n"
            "\n"
            "def mix(a: Seconds, b: Bytes) -> Seconds:\n"
            "    return a + b\n"
        )
        assert flow(tmp_path, src) == [("dim-add-mix", 5)]

    def test_same_dimension_clean(self, tmp_path):
        src = (
            "from repro.units import Seconds\n"
            "\n"
            "\n"
            "def total(a: Seconds, b: Seconds) -> Seconds:\n"
            "    return a + b\n"
        )
        assert flow(tmp_path, src) == []

    def test_numeric_literal_adapts(self, tmp_path):
        # A bare literal is a wildcard: `t + 1.0` is not mixing.
        src = (
            "from repro.units import Seconds\n"
            "\n"
            "\n"
            "def pad(t: Seconds) -> Seconds:\n"
            "    return t + 1.0\n"
        )
        assert flow(tmp_path, src) == []


class TestDimReturn:
    def test_bytes_returned_as_seconds_fires(self, tmp_path):
        src = (
            "from repro.units import Bytes, Seconds\n"
            "\n"
            "\n"
            "def wrong(x: Bytes) -> Seconds:\n"
            "    return x\n"
        )
        assert flow(tmp_path, src) == [("dim-return", 5)]

    def test_derived_quotient_clean(self, tmp_path):
        # bytes / (bytes/s) = s — the transfer-time identity.
        src = (
            "from repro.units import Bytes, BytesPerSecond, Seconds\n"
            "\n"
            "\n"
            "def transfer(nbytes: Bytes, bw: BytesPerSecond) -> Seconds:\n"
            "    return nbytes / bw\n"
        )
        assert flow(tmp_path, src) == []

    def test_zero_literal_return_clean(self, tmp_path):
        src = (
            "from repro.units import Seconds\n"
            "\n"
            "\n"
            "def idle() -> Seconds:\n"
            "    return 0.0\n"
        )
        assert flow(tmp_path, src) == []


class TestDimProduct:
    def test_watts_squared_fires(self, tmp_path):
        src = (
            "from repro.units import Watts\n"
            "\n"
            "\n"
            "def square(w: Watts):\n"
            "    return w * w\n"
        )
        assert flow(tmp_path, src) == [("dim-product", 5)]

    def test_watts_times_seconds_is_joules_clean(self, tmp_path):
        src = (
            "from repro.units import Joules, Seconds, Watts\n"
            "\n"
            "\n"
            "def energy(p: Watts, dt: Seconds) -> Joules:\n"
            "    return p * dt\n"
        )
        assert flow(tmp_path, src) == []

    def test_ratio_is_transparent_in_products(self, tmp_path):
        # Scaling by a dimensionless efficiency keeps the dimension.
        src = (
            "from repro.units import BytesPerSecond, Ratio\n"
            "\n"
            "\n"
            "def effective(bw: BytesPerSecond, eff: Ratio) -> BytesPerSecond:\n"
            "    return bw * eff\n"
        )
        assert flow(tmp_path, src) == []


class TestDimArg:
    SRC_CALLEE = (
        "from repro.units import Seconds\n"
        "\n"
        "\n"
        "def takes_seconds(t: Seconds) -> Seconds:\n"
        "    return t\n"
    )

    def test_wrong_argument_dimension_fires(self, tmp_path):
        src = (
            "from repro.units import Bytes, Seconds\n"
            "\n"
            "\n"
            "def takes_seconds(t: Seconds) -> Seconds:\n"
            "    return t\n"
            "\n"
            "\n"
            "def bad(nbytes: Bytes):\n"
            "    return takes_seconds(nbytes)\n"
        )
        assert flow(tmp_path, src) == [("dim-arg", 9)]

    def test_cross_module_call_fires(self, tmp_path):
        (tmp_path / "a.py").write_text(self.SRC_CALLEE)
        src = (
            "from repro.units import Bytes\n"
            "from a import takes_seconds\n"
            "\n"
            "\n"
            "def bad(nbytes: Bytes):\n"
            "    return takes_seconds(nbytes)\n"
        )
        assert flow(tmp_path, src, name="b.py") == [("dim-arg", 6)]

    def test_matching_argument_clean(self, tmp_path):
        src = (
            "from repro.units import Seconds\n"
            "\n"
            "\n"
            "def takes_seconds(t: Seconds) -> Seconds:\n"
            "    return t\n"
            "\n"
            "\n"
            "def good(dt: Seconds):\n"
            "    return takes_seconds(dt)\n"
        )
        assert flow(tmp_path, src) == []


class TestRuleSelection:
    MIXED = (
        "from repro.units import Bytes, Seconds\n"
        "\n"
        "\n"
        "def mix(a: Seconds, b: Bytes) -> Seconds:\n"
        "    return a + b\n"
        "\n"
        "\n"
        "def wrong(x: Bytes) -> Seconds:\n"
        "    return x\n"
    )

    def test_rules_subset_filters(self, tmp_path):
        got = flow(tmp_path, self.MIXED, rules=["dim-add-mix"])
        assert got == [("dim-add-mix", 5)]

    def test_unknown_rule_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown flow rules"):
            flow(tmp_path, self.MIXED, rules=["dim-nonsense"])


class TestSuppression:
    def test_inline_suppression_drops_violation(self, tmp_path):
        src = (
            "from repro.units import Bytes, Seconds\n"
            "\n"
            "\n"
            "def mix(a: Seconds, b: Bytes) -> Seconds:\n"
            "    return a + b  "
            "# repro-lint: disable=dim-add-mix -- mixed-unit scratch value\n"
        )
        assert flow(tmp_path, src) == []

    def test_suppression_is_rule_specific(self, tmp_path):
        # Naming a *different* rule does not silence dim-add-mix.
        src = (
            "from repro.units import Bytes, Seconds\n"
            "\n"
            "\n"
            "def mix(a: Seconds, b: Bytes) -> Seconds:\n"
            "    return a + b  "
            "# repro-lint: disable=dim-return -- wrong rule named\n"
        )
        assert flow(tmp_path, src) == [("dim-add-mix", 5)]
