"""Synthetic profiling corpora standing in for C4 and Wikipedia.

The paper profiles activation behaviour by running requests "derived from
general datasets (e.g., C4)" (Section 4.1/6.1).  The profiler here only
needs token sequences with realistic length variation, so each corpus is a
seeded generator of random token-id sequences with a distinct length
distribution (C4 web text skews short; Wikipedia articles run longer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["ProfilingCorpus", "c4_corpus", "wikipedia_corpus"]


@dataclass(frozen=True)
class ProfilingCorpus:
    """A corpus of profiling requests (token-id sequences).

    Attributes:
        name: Corpus identifier.
        mean_length: Mean request length in tokens (log-normal).
        sigma: Log-normal shape parameter.
        min_length / max_length: Clamp bounds.
    """

    name: str
    mean_length: float
    sigma: float = 0.6
    min_length: int = 4
    max_length: int = 512

    def requests(
        self, n_requests: int, vocab_size: int, rng: np.random.Generator
    ) -> Iterator[np.ndarray]:
        """Yield ``n_requests`` random token sequences."""
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        mu = np.log(self.mean_length) - 0.5 * self.sigma**2
        for _ in range(n_requests):
            length = int(np.clip(rng.lognormal(mu, self.sigma), self.min_length, self.max_length))
            yield rng.integers(0, vocab_size, size=length)


def c4_corpus() -> ProfilingCorpus:
    """Web-crawl style corpus: shorter, highly variable documents."""
    return ProfilingCorpus(name="c4", mean_length=48, sigma=0.8)


def wikipedia_corpus() -> ProfilingCorpus:
    """Encyclopedia-style corpus: longer, more uniform documents."""
    return ProfilingCorpus(name="wikipedia", mean_length=128, sigma=0.5)
