"""Tests for Chrome trace-event export of schedules."""

import json

from repro.hardware.events import EventSimulator, SimTask


def run_sample():
    sim = EventSimulator(["gpu", "cpu"])
    return sim.run(
        [
            SimTask("a", "gpu", 1.0, tag="compute"),
            SimTask("b", "cpu", 2.0, tag="kv"),
            SimTask("c", "gpu", 0.5, deps=("a", "b"), tag="merge"),
        ]
    )


class TestChromeTrace:
    def test_one_event_per_task_plus_metadata(self):
        events = run_sample().to_chrome_trace()
        complete = [e for e in events if e.get("ph") == "X"]
        meta = [e for e in events if e.get("ph") == "M"]
        assert len(complete) == 3
        assert len(meta) == 2  # one thread_name per resource

    def test_timestamps_in_microseconds(self):
        events = run_sample().to_chrome_trace()
        c = next(e for e in events if e.get("name") == "c")
        assert c["ts"] == 2.0 * 1e6
        assert c["dur"] == 0.5 * 1e6

    def test_resources_map_to_threads(self):
        events = run_sample().to_chrome_trace()
        by_name = {e["name"]: e for e in events if e.get("ph") == "X"}
        assert by_name["a"]["tid"] != by_name["b"]["tid"]
        assert by_name["a"]["tid"] == by_name["c"]["tid"]  # both on gpu

    def test_tags_become_categories(self):
        events = run_sample().to_chrome_trace()
        a = next(e for e in events if e.get("name") == "a")
        assert a["cat"] == "compute"

    def test_save_writes_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        run_sample().save_chrome_trace(path)
        with open(path) as fh:
            data = json.load(fh)
        assert "traceEvents" in data
        assert len(data["traceEvents"]) == 5

    def test_engine_schedule_exports(self, mini_plan, tmp_path):
        from repro.engine.powerinfer import PowerInferEngine

        result = PowerInferEngine(mini_plan).simulate_iteration(8, 1)
        events = result.to_chrome_trace()
        assert len([e for e in events if e.get("ph") == "X"]) == len(result.tasks)
