"""AST lint rules enforcing the repo's simulation discipline.

The simulator's headline numbers are only trustworthy while a handful of
code-level invariants hold everywhere: time comes from the simulated clock
(never the wall clock), randomness flows through explicitly seeded
``np.random.Generator`` objects (never hidden global state), simulated
times are compared with tolerances (never float ``==``), engine DAG tasks
are priced through the shared ``op_task``/``transfer_task`` constructors
(so every duration carries a decomposable :class:`TaskCost`), tracing is
opt-in and zero-cost (``tracer=None`` defaults), and nothing that feeds a
scheduling decision iterates an unordered set.  Scattered per-feature
tests cannot enforce discipline like that; a linter can.

``lint_paths`` walks Python files, parses each with :mod:`ast`, and runs
the rule set below (:data:`RULES`).  A violation can be suppressed at its
line with an inline comment::

    res[dep].end == tr.start  # repro-lint: disable=float-time-eq -- exact by construction

Everything after ``--`` is a free-form justification.  Suppressions that
name an unknown rule are themselves reported (rule ``bad-suppression``),
so typos cannot silently disable a check.  Run via ``repro lint`` (see
docs/static_analysis.md for the rule catalogue).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.check.registry import FLOW_RULES

__all__ = [
    "RULES",
    "LintViolation",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "report_as_dict",
    "format_text",
]

# Rule id -> one-line description.  docs/static_analysis.md carries the
# full rationale, examples, and suppression guidance for each.
RULES: dict[str, str] = {
    "wall-clock": "wall-clock time source; simulation code must use the simulated clock",
    "stdlib-random": "stdlib `random` module; use an explicitly seeded np.random.Generator",
    "np-legacy-random": "legacy np.random module-level call; use np.random.default_rng(seed)",
    "unseeded-rng": "np.random.default_rng() without a seed is nondeterministic",
    "float-time-eq": "float ==/!= on simulated times or durations; compare with a tolerance",
    "inline-sim-task": "SimTask constructed inline; price tasks via op_task/transfer_task",
    "tracer-default": "tracer parameters must default to None (NullTracer-compatible)",
    "mutable-default": "mutable default argument",
    "unstable-iteration": "iteration over an unordered set; use sorted() or dict.fromkeys()",
    "bad-suppression": "suppression comment names an unknown rule",
    "parse-error": "file does not parse",
}

# Rules that cannot be selected or suppressed away — they guard the linter
# itself rather than the linted code.
_META_RULES = ("bad-suppression", "parse-error")

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-, ]+)")

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
}
# Suffix-matched so `datetime.datetime.now`, `datetime.now` (after
# `from datetime import datetime`) and `date.today` all hit.
_WALL_CLOCK_SUFFIXES = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

# The np.random attributes that are part of the *seeded* Generator API.
# Everything else on np.random is the legacy global-state surface.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

# Identifier fragments that mark a value as simulated time / duration.
# Identifiers are split on underscores; any matching fragment counts.
_TIME_WORDS = {
    "time",
    "times",
    "duration",
    "durations",
    "makespan",
    "deadline",
    "latency",
    "ttft",
    "tbt",
    "start",
    "end",
    "now",
    "horizon",
    "elapsed",
    "arrival",
    "t0",
    "t1",
}

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


@dataclass(frozen=True)
class LintViolation:
    """One rule firing at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, None for anything dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_timelike(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return False
    return any(part in _TIME_WORDS for part in ident.lower().split("_"))


def _is_zero_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


def _is_non_numeric_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bytes, bool))
    )


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass AST walk emitting raw (unsuppressed) violations."""

    def __init__(self, path: str, enabled: set[str]) -> None:
        self.path = path
        self.enabled = enabled
        self.violations: list[LintViolation] = []
        # The telemetry package may take required tracer arguments — its
        # whole purpose is tracing; everywhere else tracing must be opt-in.
        self._tracer_exempt = "telemetry" in Path(path).parts

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.enabled:
            self.violations.append(
                LintViolation(
                    rule=rule,
                    path=self.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                )
            )

    # ---- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._emit(
                    "stdlib-random",
                    node,
                    "import of the stdlib `random` module (global hidden "
                    "state); use a seeded np.random.Generator",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._emit(
                "stdlib-random",
                node,
                "import from the stdlib `random` module (global hidden "
                "state); use a seeded np.random.Generator",
            )
        self.generic_visit(node)

    # ---- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted_name(node.func)
        if chain is not None:
            self._check_wall_clock(node, chain)
            self._check_random_calls(node, chain)
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "SimTask":
            self._emit(
                "inline-sim-task",
                node,
                "SimTask constructed inline — price tasks via op_task/"
                "transfer_task so durations carry a decomposable TaskCost",
            )
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, chain: str) -> None:
        hit = chain in _WALL_CLOCK_CALLS or any(
            chain == s or chain.endswith("." + s) for s in _WALL_CLOCK_SUFFIXES
        )
        if hit:
            self._emit(
                "wall-clock",
                node,
                f"`{chain}()` reads the wall clock; simulation code must "
                "derive time from the simulated clock",
            )

    def _check_random_calls(self, node: ast.Call, chain: str) -> None:
        if chain.startswith("random."):
            self._emit(
                "stdlib-random",
                node,
                f"`{chain}()` uses the stdlib global RNG; use a seeded "
                "np.random.Generator",
            )
            return
        parts = chain.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            fn = parts[2]
            if fn == "default_rng":
                if not node.args and not node.keywords:
                    self._emit(
                        "unseeded-rng",
                        node,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy — pass an explicit seed",
                    )
            elif fn not in _NP_RANDOM_ALLOWED:
                self._emit(
                    "np-legacy-random",
                    node,
                    f"`{chain}()` mutates numpy's global RNG state; use "
                    "np.random.default_rng(seed)",
                )

    # ---- comparisons ---------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            skip = any(
                _is_zero_literal(o) or _is_non_numeric_literal(o) for o in operands
            )
            if not skip and any(_is_timelike(o) for o in operands):
                named = next(o for o in operands if _is_timelike(o))
                ident = named.id if isinstance(named, ast.Name) else named.attr
                self._emit(
                    "float-time-eq",
                    node,
                    f"exact ==/!= on simulated time `{ident}`; float "
                    "schedule arithmetic needs a tolerance (or a justified "
                    "suppression where bit-exactness is the contract)",
                )
        self.generic_visit(node)

    # ---- function definitions ------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        # Positional/keyword defaults align right-to-left.
        pos_args = args.posonlyargs + args.args
        defaults: list[tuple[ast.arg, ast.AST | None]] = []
        pad = len(pos_args) - len(args.defaults)
        for i, arg in enumerate(pos_args):
            defaults.append((arg, args.defaults[i - pad] if i >= pad else None))
        defaults.extend(zip(args.kwonlyargs, args.kw_defaults))

        for arg, default in defaults:
            if default is not None and self._is_mutable_default(default):
                self._emit(
                    "mutable-default",
                    default,
                    f"mutable default for parameter `{arg.arg}` is shared "
                    "across calls; default to None and construct inside",
                )
            if arg.arg == "tracer" and not self._tracer_exempt:
                if default is None:
                    self._emit(
                        "tracer-default",
                        arg,
                        f"`{node.name}` requires a tracer argument; tracing "
                        "must be opt-in (default tracer=None) so untraced "
                        "runs stay zero-cost",
                    )
                elif not self._is_null_tracer_default(default):
                    self._emit(
                        "tracer-default",
                        default,
                        f"`{node.name}` defaults its tracer to a recording "
                        "value; default must be None or NullTracer()",
                    )

    @staticmethod
    def _is_mutable_default(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )

    @staticmethod
    def _is_null_tracer_default(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and node.value is None:
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            return name is not None and name.split(".")[-1] == "NullTracer"
        return False

    # ---- iteration order -----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    def _check_iterable(self, node: ast.AST) -> None:
        unordered = isinstance(node, (ast.Set, ast.SetComp)) or (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )
        if unordered:
            self._emit(
                "unstable-iteration",
                node,
                "iterating an unordered set; order-stabilize with sorted() "
                "or dict.fromkeys() before it can feed a scheduler decision",
            )


def _collect_suppressions(source: str) -> dict[int, list[str]]:
    """Map line number -> rule names suppressed by an inline comment."""
    suppressed: dict[int, list[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            names = match.group(1).split("--")[0]
            rules = [n.strip() for n in names.split(",") if n.strip()]
            suppressed.setdefault(tok.start[0], []).extend(rules)
    except tokenize.TokenizeError:
        pass  # the AST parse reports the file as broken
    return suppressed


def lint_source(
    source: str, path: str = "<string>", rules: Iterable[str] | None = None
) -> list[LintViolation]:
    """Lint one module's source; returns violations after suppression.

    ``rules`` selects a subset of :data:`RULES` (default: all).  Unknown
    rule names raise ``ValueError``.  Suppression comments apply to the
    line each violation anchors on; a suppression naming an unknown rule
    is reported as a ``bad-suppression`` violation.
    """
    if rules is None:
        enabled = set(RULES) - set(_META_RULES)
    else:
        enabled = set(rules)
        unknown = enabled - set(RULES)
        if unknown:
            raise ValueError(f"unknown lint rules: {sorted(unknown)}")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(
                rule="parse-error",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]

    visitor = _RuleVisitor(path, enabled)
    visitor.visit(tree)
    suppressions = _collect_suppressions(source)

    kept = [
        v
        for v in visitor.violations
        if v.rule not in suppressions.get(v.line, [])
    ]
    # Suppressions are validated against every rule any check tool can
    # emit (lint + the check-flow passes share the comment syntax), so a
    # flow-rule suppression does not trip the linter — but a typo still
    # does.
    suppressible = (set(RULES) | set(FLOW_RULES)) - set(_META_RULES)
    for line in sorted(suppressions):
        for name in suppressions[line]:
            if name not in suppressible:
                kept.append(
                    LintViolation(
                        rule="bad-suppression",
                        path=path,
                        line=line,
                        col=0,
                        message=f"suppression names unknown rule {name!r}; "
                        f"known rules: {', '.join(sorted(suppressible))}",
                    )
                )
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return kept


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def lint_paths(
    paths: Sequence[str | Path], rules: Iterable[str] | None = None
) -> tuple[list[LintViolation], int]:
    """Lint files/directories; returns (violations, files linted)."""
    files = iter_python_files(paths)
    violations: list[LintViolation] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        violations.extend(lint_source(source, path=str(file), rules=rules))
    return violations, len(files)


def report_as_dict(violations: Sequence[LintViolation], n_files: int) -> dict:
    """Machine-readable lint report (the ``--format json`` payload)."""
    by_rule: dict[str, int] = {}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    return {
        "ok": not violations,
        "n_files": n_files,
        "n_violations": len(violations),
        "by_rule": dict(sorted(by_rule.items())),
        "violations": [v.to_dict() for v in violations],
    }


def format_text(violations: Sequence[LintViolation], n_files: int) -> str:
    """Human-readable lint report."""
    lines = [v.format() for v in violations]
    if violations:
        lines.append(f"{len(violations)} violation(s) across {n_files} file(s)")
    else:
        lines.append(f"OK: {n_files} file(s), no violations")
    return "\n".join(lines)


def to_json(violations: Sequence[LintViolation], n_files: int) -> str:
    """The JSON report as a string."""
    return json.dumps(report_as_dict(violations, n_files), indent=2) + "\n"
