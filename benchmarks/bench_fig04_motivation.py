"""Figure 4 — motivation: existing offloading systems on OPT-30B / PC-High.

Checks reproduced against the paper:
* FlexGen and DejaVu-UM spend the overwhelming share of each iteration on
  PCIe transfers (paper: >99.5% for FlexGen at batch 1).
* llama.cpp avoids transfers but is CPU-bound (paper: ~98% of compute on
  the CPU, ~600 ms per iteration at batch 1).
"""

from conftest import run_once

from repro.bench.fig04 import run_fig04


def test_fig04_motivation(benchmark, record_rows):
    rows = run_once(benchmark, run_fig04)
    record_rows("fig04_motivation", rows, "Figure 4 — offloading baselines, OPT-30B on PC-High")

    llama_b1 = next(r for r in rows if r["engine"] == "llama.cpp" and r["batch"] == 1)
    flex_b1 = next(r for r in rows if r["engine"] == "flexgen" and r["batch"] == 1)
    dv_b1 = next(r for r in rows if r["engine"] == "dejavu-um" and r["batch"] == 1)

    # Transfer dominates the GPU-centric systems.
    assert flex_b1["transfer_share"] > 0.85
    assert dv_b1["transfer_share"] > 0.85
    # llama.cpp is CPU-bound with negligible transfer, latency ~hundreds of ms.
    assert llama_b1["transfer_share"] < 0.01
    assert llama_b1["cpu_share"] > 0.90
    assert 300 < llama_b1["iteration_ms"] < 1200
