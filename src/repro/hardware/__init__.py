"""Hardware substrate: device specs, memory accounting, event simulation.

This package replaces the physical machines of the paper's evaluation
(PC-High, PC-Low, and the A100 server) with a deterministic roofline /
discrete-event model.  See DESIGN.md section 1 for the substitution
rationale.
"""

from repro.hardware.costmodel import CostModel, OpWork
from repro.hardware.events import (
    EventSimulator,
    Resource,
    ScheduleResult,
    SimTask,
    TaskResult,
)
from repro.hardware.faults import FaultEvent, FaultKind, FaultSchedule
from repro.hardware.memory import Allocation, MemoryPool, OutOfMemoryError
from repro.hardware.spec import (
    A100_SERVER,
    GB,
    GIB,
    MACHINE_PRESETS,
    PC_HIGH,
    PC_LOW,
    DeviceKind,
    DeviceSpec,
    LinkSpec,
    MachineSpec,
)

__all__ = [
    "A100_SERVER",
    "Allocation",
    "CostModel",
    "DeviceKind",
    "DeviceSpec",
    "EventSimulator",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "GB",
    "GIB",
    "LinkSpec",
    "MACHINE_PRESETS",
    "MachineSpec",
    "MemoryPool",
    "OpWork",
    "OutOfMemoryError",
    "PC_HIGH",
    "PC_LOW",
    "Resource",
    "ScheduleResult",
    "SimTask",
    "TaskResult",
]
