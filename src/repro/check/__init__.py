"""Simulation-correctness analyzers: lint, flow analysis, schedule validation.

Three layers, one contract.  :mod:`repro.check.lint` statically enforces
per-file coding discipline the simulator's determinism rests on
(simulated clock only, seeded RNGs, tolerance-based time comparison,
shared cost constructors, opt-in tracing, stable iteration order).
:mod:`repro.check.flow` analyzes the project *interprocedurally* — a
call graph (:mod:`repro.check.callgraph`) feeding a units/dimension
inference pass (:mod:`repro.check.dimensions`, over the
:mod:`repro.units` aliases) and a seed-provenance dataflow pass
(:mod:`repro.check.provenance`).
:mod:`repro.check.schedule` dynamically replays realized schedules and
serving runs against the invariants the simulator promises (exclusive
devices, dependency order, cost-component accounting, KV-memory
conservation, fault-epoch consistency, trace/report reconciliation);
:mod:`repro.check.verify` sweeps those checks across the bench suite.
:mod:`repro.check.report` merges everything into one schema.  CLI:
``repro lint``, ``repro check-flow``, ``repro verify-schedule``, and the
``repro check`` umbrella.
"""

from repro.check.flow import (
    FlowReport,
    flow_report_as_dict,
    run_flow,
)
from repro.check.lint import (
    RULES,
    LintViolation,
    lint_paths,
    lint_source,
)
from repro.check.registry import FLOW_RULES
from repro.check.report import (
    CheckReport,
    CheckViolation,
    ToolReport,
    run_check,
)
from repro.check.schedule import (
    KVEvent,
    ScheduleValidationError,
    Violation,
    require_valid,
    validate_energy_report,
    validate_fleet_energy,
    validate_fleet_run,
    validate_kv_ledger,
    validate_schedule,
    validate_server_run,
)
from repro.check.verify import format_verification, run_verification

__all__ = [
    "RULES",
    "FLOW_RULES",
    "LintViolation",
    "lint_paths",
    "lint_source",
    "FlowReport",
    "flow_report_as_dict",
    "run_flow",
    "CheckReport",
    "CheckViolation",
    "ToolReport",
    "run_check",
    "KVEvent",
    "ScheduleValidationError",
    "Violation",
    "require_valid",
    "validate_energy_report",
    "validate_fleet_energy",
    "validate_fleet_run",
    "validate_kv_ledger",
    "validate_schedule",
    "validate_server_run",
    "format_verification",
    "run_verification",
]
