"""Figure 14 — batched inference, Falcon-40B on PC-High.

Paper: ~6.08x average speedup below batch 32, decaying with batch size as
joint activations densify, but still 4.38x at batch 32.
"""

from conftest import run_once

from repro.bench.fig14 import run_fig14


def test_fig14_batching(benchmark, record_rows):
    rows = run_once(benchmark, run_fig14)
    record_rows("fig14_batching", rows, "Figure 14 — batch-size sweep, Falcon-40B PC-High")

    by_batch = {r["batch"]: r for r in rows}
    # Speedup decays with batch size...
    assert by_batch[1]["speedup"] > by_batch[32]["speedup"]
    # ...but batching still helps absolute throughput...
    assert by_batch[32]["powerinfer_tps"] > by_batch[1]["powerinfer_tps"]
    # ...and a solid advantage survives at batch 32 (paper: 4.38x).
    assert by_batch[32]["speedup"] > 2.0
