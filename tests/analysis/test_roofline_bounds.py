"""Roofline throughput bounds are true bounds on the simulated engine.

``oracle_gpu_sparse`` assumes every active weight byte streams at GPU
bandwidth with zero overheads, and ``sparse_hybrid`` assumes perfect
CPU/GPU overlap with no launch/sync/transfer/KV costs — both must sit at
or above what the full event-driven simulation of PowerInfer achieves,
when fed the activation rates and placement the plan actually solved.
"""

import pytest

from repro.analysis.roofline import throughput_bounds
from repro.bench.runner import make_engine

PRESETS = [
    ("opt-30b", "pc-high", "fp16"),
    ("opt-13b", "pc-high", "fp16"),
    ("opt-6.7b", "pc-low", "int4"),
]


def _plan_bounds(engine):
    """Bounds parameterized by the engine's own plan, not the defaults."""
    plan = engine.plan
    n = plan.model.n_layers
    mlp_rate = sum(
        sum(plan.mlp_active_split(li)) / plan.mlp_probs[li].size for li in range(n)
    ) / n
    attn_rate = sum(
        sum(plan.attn_active_split(li)) / plan.attn_probs[li].size for li in range(n)
    ) / n
    gpu_fraction = plan.gpu_weight_bytes / plan.dtype.nbytes(
        plan.model.n_layers * plan.model.params_per_layer
    )
    return throughput_bounds(
        plan.model,
        engine.machine,
        plan.dtype,
        mlp_active_rate=mlp_rate,
        attn_active_rate=attn_rate,
        hot_capture=plan.gpu_neuron_load_share(1),
        gpu_weight_fraction=min(gpu_fraction, 1.0),
    )


@pytest.mark.parametrize("model,machine,dtype", PRESETS)
def test_simulated_decode_within_bounds(model, machine, dtype):
    engine = make_engine("powerinfer", model, machine, dtype)
    bounds = _plan_bounds(engine)
    simulated_tps = 1.0 / engine.simulate_iteration(64, 1, 1).makespan

    assert simulated_tps > 0.0
    # Oracle: all active bytes at GPU bandwidth — a strict ceiling.
    assert simulated_tps <= bounds.oracle_gpu_sparse
    # Sparse hybrid: overlapped CPU/GPU streaming with no fixed costs —
    # the simulation adds launch/sync/transfer/KV time, so it sits below.
    assert simulated_tps <= bounds.sparse_hybrid


@pytest.mark.parametrize("model,machine,dtype", PRESETS)
def test_bound_ordering(model, machine, dtype):
    engine = make_engine("powerinfer", model, machine, dtype)
    bounds = _plan_bounds(engine)
    # Sparsity can only help: dense ceilings sit below the sparse ones.
    assert bounds.dense_gpu_only <= bounds.oracle_gpu_sparse
    assert bounds.dense_hybrid <= bounds.sparse_hybrid
    assert 0.0 < bounds.active_fraction < 1.0
    assert 0.0 < bounds.gpu_weight_fraction <= 1.0
