"""Power-law activation frequency synthesis (paper Insight-1, Figure 5).

The paper reports that neuron activation follows a skewed power law: in a
single MLP layer, 26% (OPT-30B) / 43% (LLaMA-ReGLU-70B) of neurons account
for 80% of all activations, and roughly 10% of MLP neurons fire per token.
This module synthesizes per-neuron activation probabilities matching any
such (hot_fraction -> hot_mass) target:

1. Draw a bounded-Zipf frequency profile ``f_i ~ i^-alpha`` and solve for
   ``alpha`` so the top ``hot_fraction`` of neurons carries ``hot_mass`` of
   the total frequency (bisection on the monotone top-share function).
2. Scale frequencies so the mean activation probability equals the target
   per-token activation rate, clipping at 1.

The synthesized probabilities drive the activation sampler, the profiler's
synthetic traces, and — through :func:`repro.models.weights.init_weights` —
the biases of the numpy models, so the numerical substrate exhibits the same
distribution *mechanically* through its ReLUs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_weights",
    "fit_zipf_alpha",
    "top_share",
    "synthesize_activation_probs",
    "activation_cdf",
    "neuron_fraction_for_mass",
]


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Unnormalized Zipf weights ``(i+1)^-alpha`` for ``n`` ranks."""
    if n <= 0:
        raise ValueError("n must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return ranks**-alpha


def top_share(weights: np.ndarray, fraction: float) -> float:
    """Share of total mass held by the largest ``fraction`` of entries."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if weights.size == 0:
        raise ValueError("weights must be non-empty")
    k = max(1, int(round(fraction * weights.size)))
    ordered = np.sort(weights)[::-1]
    total = ordered.sum()
    if total <= 0:
        raise ValueError("weights must have positive mass")
    return float(ordered[:k].sum() / total)


def fit_zipf_alpha(
    n: int,
    hot_fraction: float,
    hot_mass: float,
    tol: float = 1e-4,
    max_iter: int = 100,
) -> float:
    """Solve for the Zipf exponent giving ``top_share(hot_fraction) = hot_mass``.

    The top share is monotonically increasing in ``alpha`` (alpha=0 is
    uniform, giving share == fraction), so bisection converges.

    Raises:
        ValueError: If ``hot_mass < hot_fraction`` (impossible: the top k
            items always hold at least a proportional share).
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must be in (0, 1)")
    if not 0.0 < hot_mass < 1.0:
        raise ValueError("hot_mass must be in (0, 1)")
    if hot_mass < hot_fraction:
        raise ValueError(
            "hot_mass must be >= hot_fraction (top items hold at least a "
            "proportional share of a sorted distribution)"
        )
    lo, hi = 0.0, 8.0
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        share = top_share(zipf_weights(n, mid), hot_fraction)
        if abs(share - hot_mass) < tol:
            return mid
        if share < hot_mass:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _scale_to_mean(weights: np.ndarray, rate: float) -> np.ndarray:
    """Find s so that ``mean(clip(s * weights, 0, 1)) == rate`` and apply it.

    The clipped mean is monotone increasing in ``s`` and saturates at 1, so
    bisection converges whenever ``rate < 1``.
    """
    lo, hi = 0.0, rate / max(float(weights.mean()), 1e-300)
    while float(np.minimum(hi * weights, 1.0).mean()) < rate:
        hi *= 2.0
        if hi > 1e30:
            raise ValueError("cannot reach the requested activation rate")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if float(np.minimum(mid * weights, 1.0).mean()) < rate:
            lo = mid
        else:
            hi = mid
    return np.minimum(hi * weights, 1.0)


def synthesize_activation_probs(
    n_neurons: int,
    rng: np.random.Generator,
    hot_fraction: float = 0.26,
    hot_mass: float = 0.80,
    mean_activation_rate: float = 0.10,
    shuffle: bool = True,
    jitter: float = 0.05,
) -> np.ndarray:
    """Per-neuron activation probabilities matching a paper-style power law.

    Calibration happens on the final distribution: the Zipf exponent is
    chosen by bisection so that *after* scaling to the target mean rate and
    clipping at probability 1, the hottest ``hot_fraction`` of neurons still
    carries ``hot_mass`` of the total activation mass.

    Args:
        n_neurons: Neuron count (e.g. ``d_ffn`` for an MLP layer).
        rng: Seeded generator for shuffling and jitter.
        hot_fraction: Fraction of neurons that should carry ``hot_mass``.
        hot_mass: Activation mass the hot set carries (paper: 0.80).
        mean_activation_rate: Average per-token activation probability
            (paper: ~0.10 for OPT MLP layers).
        shuffle: Randomly permute neuron ranks (real layers are not sorted).
        jitter: Multiplicative log-normal noise on each probability.

    Returns:
        Array of shape ``(n_neurons,)`` with values in (0, 1].
    """
    if not 0.0 < mean_activation_rate < 1.0:
        raise ValueError("mean_activation_rate must be in (0, 1)")
    if hot_mass < hot_fraction:
        raise ValueError("hot_mass must be >= hot_fraction")
    # Feasibility: the hot set must be able to carry hot_mass of the total
    # mass (n * rate) without any probability exceeding 1.
    if mean_activation_rate * hot_mass > hot_fraction:
        raise ValueError(
            f"infeasible target: mean rate {mean_activation_rate} with "
            f"{hot_fraction:.0%} of neurons carrying {hot_mass:.0%} of mass "
            f"requires per-neuron probabilities above 1 "
            f"(rate must be <= hot_fraction / hot_mass = "
            f"{hot_fraction / hot_mass:.3f})"
        )
    noise = (
        np.exp(rng.normal(0.0, jitter, size=n_neurons)) if jitter > 0 else 1.0
    )

    def share_for_alpha(alpha: float) -> tuple[float, np.ndarray]:
        probs = _scale_to_mean(zipf_weights(n_neurons, alpha) * noise, mean_activation_rate)
        return top_share(probs, hot_fraction), probs

    lo, hi = 0.0, 12.0
    probs = None
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        share, probs = share_for_alpha(mid)
        if abs(share - hot_mass) < 1e-4:
            break
        if share < hot_mass:
            lo = mid
        else:
            hi = mid
    assert probs is not None
    probs = np.clip(probs, 1e-6, 1.0)
    if shuffle:
        rng.shuffle(probs)
    return probs


def activation_cdf(frequencies: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CDF of activation mass vs. neuron proportion (paper Figure 5 axes).

    Returns ``(neuron_proportion, cumulative_activation_share)`` with
    neurons sorted by descending frequency.
    """
    if frequencies.size == 0:
        raise ValueError("frequencies must be non-empty")
    ordered = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    total = ordered.sum()
    if total <= 0:
        raise ValueError("frequencies must have positive mass")
    cum = np.cumsum(ordered) / total
    proportion = np.arange(1, ordered.size + 1) / ordered.size
    return proportion, cum


def neuron_fraction_for_mass(frequencies: np.ndarray, mass: float) -> float:
    """Smallest neuron fraction whose activations cover ``mass`` of the total.

    This is the statistic of Figure 5 ("26% of neurons account for 80% of
    activations" -> returns 0.26 for mass=0.80).
    """
    if not 0.0 < mass <= 1.0:
        raise ValueError("mass must be in (0, 1]")
    proportion, cum = activation_cdf(frequencies)
    idx = int(np.searchsorted(cum, mass))
    idx = min(idx, proportion.size - 1)
    return float(proportion[idx])
