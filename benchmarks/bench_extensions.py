"""Extension experiments beyond the paper's evaluation.

* Speculative decoding on top of PowerInfer (the Section 9 integration the
  paper suggests as future work): speedup vs draft length and acceptance.
* Serving under load: sustained request rate before queueing dominates,
  PowerInfer vs llama.cpp (the deployment-level consequence of Figure 10).
"""

import numpy as np
from conftest import run_once

from repro.bench.runner import make_engine
from repro.engine.speculative import SpeculativeEngine
from repro.serving import poisson_arrivals, simulate_serving
from repro.serving.batched import simulate_batched_serving
from repro.workloads import CHATGPT_PROMPTS


def run_speculative_grid(
    draft_lens=(2, 4, 8), acceptance_rates=(0.5, 0.8, 0.95)
) -> list[dict]:
    target = make_engine("powerinfer", "opt-30b", "pc-high")
    # Draft: a small INT4 model fully GPU-resident.  (An FP16 draft is too
    # slow to pay off: verification's activation union already erodes the
    # target's sparsity, so the draft must be very cheap.)
    draft = make_engine("vllm", "opt-6.7b", "pc-high", "int4")
    plain = target.simulate_request(64, 128).tokens_per_second
    rows = []
    for k in draft_lens:
        for alpha in acceptance_rates:
            spec = SpeculativeEngine(target, draft, draft_len=k, acceptance_rate=alpha)
            tps = spec.simulate_request(64, 128).tokens_per_second
            rows.append(
                {
                    "draft_len": k,
                    "acceptance": alpha,
                    "tokens_per_s": tps,
                    "speedup_vs_plain": tps / plain,
                }
            )
    return rows


def run_serving_saturation(rates_per_min=(1, 2, 6, 15)) -> list[dict]:
    rows = []
    for engine_name in ("powerinfer", "llama.cpp"):
        engine = make_engine(engine_name, "opt-30b", "pc-low", "int4")
        for per_minute in rates_per_min:
            rng = np.random.default_rng(0)
            requests = poisson_arrivals(
                CHATGPT_PROMPTS, rate=per_minute / 60.0, n_requests=30, rng=rng
            )
            fcfs = simulate_serving(engine, requests)
            batched = simulate_batched_serving(engine, requests, max_batch=8)
            rows.append(
                {
                    "engine": engine_name,
                    "rate_per_min": per_minute,
                    "utilization": fcfs.utilization,
                    "p95_latency_s": fcfs.latency_percentile(95),
                    "batched_p95_s": batched.latency_percentile(95),
                }
            )
    return rows


def test_speculative_decoding(benchmark, record_rows):
    rows = run_once(benchmark, run_speculative_grid)
    record_rows("ext_speculative", rows, "Extension — speculative decoding grid")

    # High-acceptance speculation beats plain decoding ...
    best = max(rows, key=lambda r: r["speedup_vs_plain"])
    assert best["speedup_vs_plain"] > 1.2
    # ... and speedup grows with acceptance at fixed draft length.
    for k in {r["draft_len"] for r in rows}:
        series = [r["speedup_vs_plain"] for r in rows if r["draft_len"] == k]
        assert series == sorted(series)


def test_serving_saturation(benchmark, record_rows):
    rows = run_once(benchmark, run_serving_saturation)
    record_rows("ext_serving", rows, "Extension — serving saturation sweep")

    # At every offered load, PowerInfer's tail latency beats llama.cpp's.
    for rate in {r["rate_per_min"] for r in rows}:
        pi = next(r for r in rows if r["engine"] == "powerinfer" and r["rate_per_min"] == rate)
        lc = next(r for r in rows if r["engine"] == "llama.cpp" and r["rate_per_min"] == rate)
        assert pi["p95_latency_s"] < lc["p95_latency_s"]
        assert pi["utilization"] <= lc["utilization"] + 1e-9
    # Once llama.cpp saturates, batching softens its tail latency.
    lc_sat = next(
        r for r in rows if r["engine"] == "llama.cpp" and r["rate_per_min"] == 15
    )
    assert lc_sat["utilization"] > 0.95
    assert lc_sat["batched_p95_s"] < lc_sat["p95_latency_s"]
