"""Performance attribution over scheduled operator DAGs.

PowerInfer's headline claims are attribution claims: Section 6.2 argues the
speedup comes from shrinking PCIe-bound weight streaming and overlapping
CPU/GPU neuron work, and Figures 15/16 decompose where time goes.  The
telemetry layer records *what* ran where; this module answers *why* a
configuration is slow:

* :func:`decompose` — roofline **time decomposition**: every task span is
  split into memory / compute / launch / sync / transfer seconds using the
  :class:`~repro.hardware.costmodel.TaskCost` the engines attached at
  pricing time, aggregated by device, operator tag, and layer.  Because
  each task's components sum to its duration exactly, the per-device totals
  reconcile against the simulator's busy-time counters to float precision.
* :func:`critical_path` — **critical-path analysis** of a realized
  schedule: the chain of tasks with zero slack that sets the makespan, the
  gating reason for each segment (dependency wait vs. resource
  serialization), and per-operator slack for everything off the path.
* :func:`analyze_iteration` — one-call convenience: simulate one iteration
  of an engine and return the schedule, its decomposition, and its
  critical path together.

All inputs are the simulator's own records (:class:`SimTask` /
:class:`ScheduleResult` / :class:`~repro.telemetry.tracer.TaskSpan`);
nothing here re-prices or re-schedules, so attribution is exact for the
run it describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.hardware.costmodel import COST_COMPONENTS
from repro.hardware.events import EventSimulator, ScheduleResult, SimTask, TaskResult
from repro.units import Ratio, Seconds

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.engine.base import PerfEngine
    from repro.telemetry.tracer import TaskSpan

__all__ = [
    "TimeDecomposition",
    "CriticalSegment",
    "CriticalPath",
    "IterationAnalysis",
    "decompose",
    "decompose_spans",
    "critical_path",
    "analyze_iteration",
    "layer_of",
]


def layer_of(task_name: str) -> str:
    """Layer key of a task name (``"L12.mlp_gpu"`` → ``"L12"``).

    Tasks outside the per-layer naming convention (``lm_head``,
    ``hidden_xfer``) fall into ``"other"``.
    """
    if task_name.startswith("L"):
        head = task_name.split(".", 1)[0]
        if head[1:].isdigit():
            return head
    return "other"


def _zero_components() -> dict[str, Seconds]:
    return {c: 0.0 for c in COST_COMPONENTS}


@dataclass
class TimeDecomposition:
    """Where every simulated second went, along three groupings.

    Each value dict maps :data:`~repro.hardware.costmodel.COST_COMPONENTS`
    names (``memory`` / ``compute`` / ``launch`` / ``sync`` / ``transfer``)
    to seconds.  ``uncosted`` counts span seconds whose task carried no
    :class:`~repro.hardware.costmodel.TaskCost` — always zero for schedules
    built by the in-tree engines.
    """

    by_device: dict[str, dict[str, Seconds]] = field(default_factory=dict)
    by_tag: dict[str, dict[str, Seconds]] = field(default_factory=dict)
    by_layer: dict[str, dict[str, Seconds]] = field(default_factory=dict)
    uncosted: Seconds = 0.0

    def _accumulate(
        self, device: str, tag: str, layer: str, components: Mapping[str, Seconds]
    ) -> None:
        for group, key in (
            (self.by_device, device),
            (self.by_tag, tag or "untagged"),
            (self.by_layer, layer),
        ):
            bucket = group.setdefault(key, _zero_components())
            for name, seconds in components.items():
                bucket[name] += seconds

    @property
    def totals(self) -> dict[str, Seconds]:
        """Seconds per component summed over all devices."""
        out = _zero_components()
        for bucket in self.by_device.values():
            for name, seconds in bucket.items():
                out[name] += seconds
        return out

    @property
    def total_seconds(self) -> Seconds:
        """All decomposed busy seconds (plus any uncosted span time)."""
        return sum(self.totals.values()) + self.uncosted

    def device_total(self, device: str) -> Seconds:
        """Decomposed seconds attributed to one device."""
        return sum(self.by_device.get(device, {}).values())

    def shares(self) -> dict[str, Ratio]:
        """Fraction of total decomposed time per component."""
        totals = self.totals
        denom = sum(totals.values())
        if denom <= 0.0:
            return {name: 0.0 for name in totals}
        return {name: seconds / denom for name, seconds in totals.items()}

    def reconciliation_error(self, busy_time: Mapping[str, Seconds]) -> Seconds:
        """Largest per-device gap between decomposed and reported busy time.

        ``busy_time`` is the simulator's (or tracer's) busy-seconds map.
        Engines attach exact component splits, so this should sit at float
        rounding noise — the acceptance bar is 1e-6 seconds.
        """
        devices = set(busy_time) | set(self.by_device)
        return max(
            (
                abs(self.device_total(dev) - busy_time.get(dev, 0.0))
                for dev in devices
            ),
            default=0.0,
        )

    def as_rows(self, group: str = "device") -> list[dict]:
        """Table-friendly rows for one grouping (device / tag / layer)."""
        buckets = {
            "device": self.by_device,
            "tag": self.by_tag,
            "layer": self.by_layer,
        }[group]
        rows = []
        for key in sorted(buckets):
            row: dict = {group: key}
            row.update(buckets[key])
            row["total"] = sum(buckets[key].values())
            rows.append(row)
        return rows


def decompose(result: ScheduleResult) -> TimeDecomposition:
    """Roofline time decomposition of one simulated schedule."""
    return _decompose(result.tasks.values())


def decompose_spans(spans: "Iterable[TaskSpan]") -> TimeDecomposition:
    """Decomposition of recorded tracer spans (e.g. a whole serving run)."""
    return _decompose(spans)


def _decompose(tasks: "Iterable[TaskResult | TaskSpan]") -> TimeDecomposition:
    deco = TimeDecomposition()
    for task in tasks:
        device = getattr(task, "resource", None) or getattr(task, "lane", "?")
        if task.cost is None:
            deco.uncosted += task.duration
            continue
        deco._accumulate(device, task.tag, layer_of(task.name), task.cost.components())
    return deco


@dataclass(frozen=True)
class CriticalSegment:
    """One task on the critical path and why it started when it did.

    ``gate`` explains what the task was waiting on at its start instant:
    ``"dependency"`` (a DAG predecessor finished exactly then),
    ``"resource"`` (its device was busy with the previous task on the same
    lane), or ``"start"`` (it began at time zero).
    """

    name: str
    resource: str
    tag: str
    start: Seconds
    end: Seconds
    gate: str

    @property
    def duration(self) -> Seconds:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The zero-slack task chain that sets a schedule's makespan."""

    segments: list[CriticalSegment]
    makespan: Seconds
    slack: dict[str, Seconds]

    @property
    def length(self) -> Seconds:
        """Summed duration of critical segments (gaps excluded)."""
        return sum(s.duration for s in self.segments)

    def time_by_resource(self) -> dict[str, Seconds]:
        """Critical seconds attributed to each device."""
        out: dict[str, Seconds] = {}
        for seg in self.segments:
            out[seg.resource] = out.get(seg.resource, 0.0) + seg.duration
        return dict(sorted(out.items()))

    def gating_resource(self) -> str:
        """Device carrying the most critical-path time — the bottleneck."""
        by_res = self.time_by_resource()
        if not by_res:
            return ""
        return max(by_res, key=by_res.__getitem__)

    def as_rows(self) -> list[dict]:
        return [
            {
                "task": s.name,
                "resource": s.resource,
                "tag": s.tag,
                "start": s.start,
                "duration": s.duration,
                "gate": s.gate,
            }
            for s in self.segments
        ]


def critical_path(tasks: list[SimTask], result: ScheduleResult) -> CriticalPath:
    """Critical-path analysis of a realized schedule.

    ``tasks`` is the DAG handed to the simulator and ``result`` its
    schedule.  Two edge families constrain each task's start: its declared
    dependencies and the previous task scheduled on the same resource
    (devices are serial).  The critical path is walked backward from the
    makespan-setting task through whichever predecessor finished exactly
    at each task's start; slack comes from the standard backward
    (latest-start) pass over the same edges, so critical tasks report
    slack 0 and every other task the seconds it could slip without moving
    the makespan.
    """
    by_name = {t.name: t for t in tasks}
    res = result.tasks
    if not res:
        return CriticalPath(segments=[], makespan=0.0, slack={})

    # Previous/next task on the same resource, in scheduled order.
    prev_on_resource: dict[str, str] = {}
    succ: dict[str, list[str]] = {name: [] for name in res}
    lanes: dict[str, list[str]] = {}
    for name, tr in res.items():
        lanes.setdefault(tr.resource, []).append(name)
    for names in lanes.values():
        names.sort(key=lambda n: (res[n].start, res[n].end))
        for earlier, later in zip(names, names[1:]):
            prev_on_resource[later] = earlier
            succ[earlier].append(later)
    for name in res:
        for dep in by_name[name].deps:
            succ[dep].append(name)

    # Backward pass: latest finish such that the makespan is preserved.
    # Visit in reverse topological order of the combined edge set (time
    # order alone cannot break ties between zero-duration tasks).
    indegree = {name: 0 for name in res}
    for children in succ.values():
        for child in children:
            indegree[child] += 1
    frontier = [name for name, deg in indegree.items() if deg == 0]
    topo: list[str] = []
    while frontier:
        name = frontier.pop()
        topo.append(name)
        for child in succ[name]:
            indegree[child] -= 1
            if indegree[child] == 0:
                frontier.append(child)
    makespan = result.makespan
    latest_finish = {name: makespan for name in res}
    for name in reversed(topo):
        for child in succ[name]:
            child_latest_start = latest_finish[child] - res[child].duration
            latest_finish[name] = min(latest_finish[name], child_latest_start)
    slack = {
        name: (latest_finish[name] - res[name].duration) - res[name].start
        for name in res
    }

    # Walk backward from the task that realizes the makespan.
    current = max(res.values(), key=lambda tr: (tr.end, tr.start)).name
    chain: list[CriticalSegment] = []
    while current is not None:
        tr = res[current]
        gate = "start"
        nxt = None
        for dep in by_name[current].deps:
            # Gate classification is exact by construction: the scheduler
            # sets each start to the float max of dep finishes and resource
            # availability, so the gating predecessor matches bit-for-bit.
            if res[dep].end == tr.start:  # repro-lint: disable=float-time-eq -- exact by construction
                gate, nxt = "dependency", dep
                break
        if nxt is None:
            prev = prev_on_resource.get(current)
            if prev is not None and res[prev].end == tr.start:  # repro-lint: disable=float-time-eq -- exact by construction
                gate, nxt = "resource", prev
        chain.append(
            CriticalSegment(
                name=current,
                resource=tr.resource,
                tag=tr.tag,
                start=tr.start,
                end=tr.end,
                gate=gate,
            )
        )
        current = nxt
    chain.reverse()
    return CriticalPath(segments=chain, makespan=makespan, slack=slack)


@dataclass
class IterationAnalysis:
    """Bundle returned by :func:`analyze_iteration`."""

    schedule: ScheduleResult
    decomposition: TimeDecomposition
    critical_path: CriticalPath


def analyze_iteration(
    engine: "PerfEngine",
    ctx_len: int,
    n_tokens: int,
    batch: int = 1,
) -> IterationAnalysis:
    """Simulate one engine iteration and attribute its time end to end."""
    from repro.engine.base import RESOURCES

    tasks = engine.iteration_tasks(ctx_len, n_tokens, batch)
    result = EventSimulator(list(RESOURCES)).run(tasks)
    return IterationAnalysis(
        schedule=result,
        decomposition=decompose(result),
        critical_path=critical_path(tasks, result),
    )
