"""Model checkpoint IO for the numerical substrate.

Saves/loads :class:`~repro.models.weights.ModelWeights` as a single ``.npz``
archive with a JSON header carrying the architecture — the reproduction's
analogue of a GGUF/safetensors checkpoint, so profiled models, trained
predictors' base weights, and examples can persist across runs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.models.config import ModelConfig
from repro.models.weights import LayerWeights, ModelWeights

__all__ = ["save_weights", "load_weights"]

_FORMAT_VERSION = 1
_LAYER_FIELDS = ("wq", "wk", "wv", "wo", "fc1", "fc1_bias", "fc2", "attn_norm", "mlp_norm")


def save_weights(weights: ModelWeights, path: str | Path) -> None:
    """Write a model checkpoint to ``path``."""
    header = {
        "version": _FORMAT_VERSION,
        "config": dataclasses.asdict(weights.config),
    }
    arrays: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "embedding": weights.embedding,
        "final_norm": weights.final_norm,
    }
    for li, layer in enumerate(weights.layers):
        for field in _LAYER_FIELDS:
            arrays[f"layer{li}.{field}"] = getattr(layer, field)
        if layer.gate is not None:
            arrays[f"layer{li}.gate"] = layer.gate
    np.savez_compressed(path, **arrays)


def load_weights(path: str | Path) -> ModelWeights:
    """Restore a checkpoint written by :func:`save_weights`.

    Raises:
        ValueError: On an unsupported format version.
    """
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version: {header.get('version')!r}"
            )
        config = ModelConfig(**header["config"])
        layers = []
        for li in range(config.n_layers):
            fields = {f: data[f"layer{li}.{f}"] for f in _LAYER_FIELDS}
            gate_key = f"layer{li}.gate"
            layers.append(
                LayerWeights(
                    gate=data[gate_key] if gate_key in data.files else None,
                    **fields,
                )
            )
        return ModelWeights(
            config=config,
            embedding=data["embedding"],
            layers=layers,
            final_norm=data["final_norm"],
        )
