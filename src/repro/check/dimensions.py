"""Interprocedural dimension inference over annotated signatures.

The hot-path modules annotate their signatures with the aliases in
:mod:`repro.units` (``Seconds``, ``Bytes``, ``Watts``, ...).  This pass
abstract-interprets every function body over a small value lattice:

* ``Dim(v)`` — a known dimension, as an exponent vector over
  :data:`repro.units.BASE_DIMENSIONS` (``Watts`` = ``J^1 s^-1``),
* ``NUM`` — a numeric literal (a wildcard: ``0.0`` is a valid Seconds
  *and* a valid scale factor),
* ``Obj(cls)`` — an instance of an indexed class, so attribute chains
  like ``machine.link.bandwidth`` resolve through field annotations,
* ``UNKNOWN`` — everything else.

and flags arithmetic that cannot be dimensionally consistent:

* ``dim-add-mix`` — ``+``/``-`` (or ``min``/``max``) over two *known*,
  different dimensions (seconds + bytes),
* ``dim-product`` — ``*``/``/``/``**`` whose result vector is not in
  :data:`repro.units.DIMENSIONS` (watts x watts), i.e. a quantity the
  simulator has no named use for,
* ``dim-return`` — a function declared ``-> Seconds`` returning an
  expression known to be some other dimension,
* ``dim-arg`` — a call passing a known dimension into a parameter that
  declares a different one (resolved through the project call graph,
  including methods and dataclass constructors).

``UNKNOWN`` is absorbing and literals are wildcards, so unannotated code
produces no noise: every diagnostic involves at least two *declared*
dimensions that contradict each other.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.check.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    bind_args,
    dotted_name,
)
from repro.check.lint import LintViolation
from repro.units import BASE_DIMENSIONS, DIMENSIONS

__all__ = ["check_dimensions", "DIM_VECTORS", "vector_name"]

_N_AXES = len(BASE_DIMENSIONS)
_AXIS = {axis: i for i, axis in enumerate(BASE_DIMENSIONS)}
_ZERO = (0,) * _N_AXES


def _vec(exponents: dict[str, int]) -> tuple[int, ...]:
    out = [0] * _N_AXES
    for axis, power in exponents.items():
        out[_AXIS[axis]] = power
    return tuple(out)


# Alias name -> exponent vector, and the recognized-vector reverse map.
DIM_VECTORS: dict[str, tuple[int, ...]] = {
    name: _vec(exp) for name, exp in DIMENSIONS.items()
}
_NAMED: dict[tuple[int, ...], str] = {}
for _name, _v in DIM_VECTORS.items():
    _NAMED.setdefault(_v, _name)


def vector_name(vec: tuple[int, ...]) -> str:
    """Human name of a vector: alias if recognized, else exponents."""
    if vec in _NAMED:
        return _NAMED[vec]
    parts = [
        f"{axis}^{power}"
        for axis, power in zip(BASE_DIMENSIONS, vec)
        if power != 0
    ]
    return "*".join(parts) if parts else "Ratio"


# -- abstract values ----------------------------------------------------

UNKNOWN = None


class _Num:
    """Numeric literal: a wildcard that adapts to any dimension."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NUM"


NUM = _Num()


class _DimVal:
    __slots__ = ("vec",)

    def __init__(self, vec: tuple[int, ...]):
        self.vec = vec

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DimVal) and other.vec == self.vec

    def __hash__(self) -> int:
        return hash(self.vec)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dim({vector_name(self.vec)})"


class _ObjVal:
    __slots__ = ("cls",)

    def __init__(self, cls: ClassInfo):
        self.cls = cls

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ObjVal) and other.cls is self.cls

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Obj({self.cls.name})"


class _FuncRef:
    __slots__ = ("info",)

    def __init__(self, info: FunctionInfo):
        self.info = info


class _ClsRef:
    __slots__ = ("info",)

    def __init__(self, info: ClassInfo):
        self.info = info


_PASSTHROUGH_BUILTINS = {"abs", "float", "round"}
_MINMAX_BUILTINS = {"min", "max"}


class _FunctionChecker:
    """Abstract interpretation of one function body."""

    def __init__(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        index: ProjectIndex,
        graph: CallGraph,
        violations: list[LintViolation],
    ):
        self.func = func
        self.module = module
        self.index = index
        self.graph = graph
        self.violations = violations
        self.env: dict[str, object] = {}
        self._declared_return = self._annotation_value(func.returns)

    # -- helpers ------------------------------------------------------
    def _annotation_value(self, ann: str | None) -> object:
        if ann is None:
            return UNKNOWN
        if ann in DIM_VECTORS:
            return _DimVal(DIM_VECTORS[ann])
        cls = self.index.class_named(ann)
        if cls is not None:
            return _ObjVal(cls)
        return UNKNOWN

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            LintViolation(
                rule=rule,
                path=self.func.path,
                line=getattr(node, "lineno", self.func.lineno),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _seed_env(self) -> None:
        params = self.func.params
        for i, param in enumerate(params):
            if i == 0 and self.func.cls is not None and param.name in ("self", "cls"):
                cls = self.index.class_named(self.func.cls)
                self.env[param.name] = _ObjVal(cls) if cls else UNKNOWN
                continue
            self.env[param.name] = self._annotation_value(param.annotation)

    # -- entry point --------------------------------------------------
    def run(self) -> None:
        self._seed_env()
        self._exec_block(self.func.node.body, self.env)

    # -- statements ---------------------------------------------------
    def _exec_block(self, stmts: Iterable[ast.stmt], env: dict[str, object]) -> None:
        for stmt in stmts:
            self._exec(stmt, env)

    def _merge(self, forks: list[dict[str, object]]) -> dict[str, object]:
        keys: set[str] = set()
        for fork in forks:
            keys |= set(fork)
        merged: dict[str, object] = {}
        for key in keys:
            values = [fork.get(key, UNKNOWN) for fork in forks]
            first = values[0]
            merged[key] = (
                first if all(v == first for v in values[1:]) else UNKNOWN
            )
        return merged

    def _exec(self, stmt: ast.stmt, env: dict[str, object]) -> None:
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = (
                self._annotation_value(_ann_str(stmt.annotation))
                if stmt.annotation is not None
                else UNKNOWN
            )
            value = self._eval(stmt.value, env) if stmt.value is not None else UNKNOWN
            if isinstance(target := stmt.target, ast.Name):
                env[target.id] = value if value is not UNKNOWN else declared
        elif isinstance(stmt, ast.AugAssign):
            current = self._eval_target(stmt.target, env)
            value = self._eval(stmt.value, env)
            result = self._binop_value(stmt.op, current, value, stmt)
            self._assign(stmt.target, result, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                self._check_return(value, stmt)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            forks = [dict(env), dict(env)]
            self._exec_block(stmt.body, forks[0])
            self._exec_block(stmt.orelse, forks[1])
            merged = self._merge(forks)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env)
            fork = dict(env)
            self._assign(stmt.target, UNKNOWN, fork)
            self._exec_block(stmt.body, fork)
            self._exec_block(stmt.orelse, fork)
            # Zero-iteration merge: names the loop may not have touched
            # keep their pre-loop value only if the body agrees.
            merged = self._merge([dict(env), fork])
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            fork = dict(env)
            self._exec_block(stmt.body, fork)
            self._exec_block(stmt.orelse, fork)
            merged = self._merge([dict(env), fork])
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, UNKNOWN, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            forks = [dict(env)]
            self._exec_block(stmt.body, forks[0])
            for handler in stmt.handlers:
                fork = dict(env)
                if handler.name:
                    fork[handler.name] = UNKNOWN
                self._exec_block(handler.body, fork)
                forks.append(fork)
            merged = self._merge(forks)
            env.clear()
            env.update(merged)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            if stmt.msg is not None:
                self._eval(stmt.msg, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Nested defs/classes are indexed and checked independently;
        # pass/break/continue/import/global carry no dimension flow.

    def _assign(self, target: ast.expr, value: object, env: dict[str, object]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, UNKNOWN, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, UNKNOWN, env)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._eval(target.value, env)

    def _eval_target(self, target: ast.expr, env: dict[str, object]) -> object:
        if isinstance(target, ast.Name):
            return env.get(target.id, UNKNOWN)
        if isinstance(target, ast.Attribute):
            return self._eval(target, env)
        return UNKNOWN

    def _check_return(self, value: object, node: ast.AST) -> None:
        declared = self._declared_return
        if not isinstance(declared, _DimVal) or not isinstance(value, _DimVal):
            return
        if value.vec != declared.vec:
            self._report(
                "dim-return",
                node,
                f"{self.func.qualname} declares -> "
                f"{vector_name(declared.vec)} but returns "
                f"{vector_name(value.vec)}",
            )

    # -- expressions --------------------------------------------------
    def _eval(self, node: ast.expr, env: dict[str, object]) -> object:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return UNKNOWN
            if isinstance(node.value, (int, float)):
                return NUM
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self._eval_name(node.id, env)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return self._binop(node, left, right)
        if isinstance(node, ast.UnaryOp):
            value = self._eval(node.operand, env)
            if isinstance(node.op, (ast.UAdd, ast.USub)):
                return value
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            body = self._eval(node.body, env)
            orelse = self._eval(node.orelse, env)
            if body == orelse:
                return body
            if isinstance(body, _DimVal) and orelse is NUM:
                return body
            if isinstance(orelse, _DimVal) and body is NUM:
                return orelse
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            values = [self._eval(v, env) for v in node.values]
            dims = {v.vec for v in values if isinstance(v, _DimVal)}
            if len(dims) == 1 and all(
                isinstance(v, _DimVal) or v is NUM for v in values
            ):
                return _DimVal(next(iter(dims)))
            return UNKNOWN
        if isinstance(node, ast.Compare):
            self._eval(node.left, env)
            for comparator in node.comparators:
                self._eval(comparator, env)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._assign(node.target, value, env)
            return value
        if isinstance(node, ast.Subscript):
            self._eval(node.value, env)
            self._eval(node.slice, env)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt, env)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, env)
            for value in node.values:
                self._eval(value, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            scope = dict(env)
            for gen in node.generators:
                self._eval(gen.iter, scope)
                self._assign(gen.target, UNKNOWN, scope)
                for cond in gen.ifs:
                    self._eval(cond, scope)
            if isinstance(node, ast.DictComp):
                self._eval(node.key, scope)
                self._eval(node.value, scope)
            else:
                self._eval(node.elt, scope)
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, env)
            return UNKNOWN
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, env)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            if node.value is not None:
                value = self._eval(node.value, env)
                return UNKNOWN if value is None else UNKNOWN
            return UNKNOWN
        return UNKNOWN

    def _eval_name(self, name: str, env: dict[str, object]) -> object:
        if name in env:
            return env[name]
        resolved = self.index.resolve_name(self.module, name)
        if isinstance(resolved, FunctionInfo):
            return _FuncRef(resolved)
        if isinstance(resolved, ClassInfo):
            return _ClsRef(resolved)
        return self._module_constant_value(self.module, name, depth=0)

    def _module_constant_value(
        self, module: ModuleInfo, name: str, depth: int
    ) -> object:
        if depth > 4:
            return UNKNOWN
        ann = module.constant_annotations.get(name)
        if ann is not None:
            value = self._annotation_value(ann)
            if value is not UNKNOWN:
                return value
        expr = module.constants.get(name)
        if expr is None:
            return UNKNOWN
        return self._const_expr_value(module, expr, depth)

    def _const_expr_value(
        self, module: ModuleInfo, expr: ast.expr, depth: int
    ) -> object:
        """Dimension of a module-constant initializer (literals only)."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
            if isinstance(expr.value, bool):
                return UNKNOWN
            return NUM
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Mult, ast.Pow, ast.Add, ast.Sub, ast.Div)
        ):
            left = self._const_expr_value(module, expr.left, depth + 1)
            right = self._const_expr_value(module, expr.right, depth + 1)
            if left is NUM and right is NUM:
                return NUM
            return UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            return self._const_expr_value(module, expr.operand, depth + 1)
        if isinstance(expr, ast.Name):
            return self._module_constant_value(module, expr.id, depth + 1)
        return UNKNOWN

    def _eval_attribute(self, node: ast.Attribute, env: dict[str, object]) -> object:
        # Dotted module access first: np.inf, repro.units.Seconds, MOD.CONST
        chain = dotted_name(node)
        if chain is not None:
            head, _, rest = chain.partition(".")
            if head not in env and head in self.module.imports:
                qualified = self.module.imports[head] + ("." + rest if rest else "")
                mod_name, _, attr = qualified.rpartition(".")
                target = self.index.modules.get(mod_name)
                if target is not None:
                    resolved = self.index.resolve_qualified(qualified)
                    if isinstance(resolved, FunctionInfo):
                        return _FuncRef(resolved)
                    if isinstance(resolved, ClassInfo):
                        return _ClsRef(resolved)
                    return self._module_constant_value(target, attr, depth=0)
                return UNKNOWN
        base = self._eval(node.value, env)
        if isinstance(base, _ObjVal):
            ann = base.cls.attribute_annotation(node.attr)
            if ann is not None:
                return self._annotation_value(ann)
            method = base.cls.methods.get(node.attr)
            if method is not None and not method.is_property:
                return _BoundMethod(method, base)
            return UNKNOWN
        if isinstance(base, _ClsRef):
            method = base.info.methods.get(node.attr)
            if method is not None:
                return _FuncRef(method)
        return UNKNOWN

    # -- arithmetic ---------------------------------------------------
    def _binop(self, node: ast.BinOp, left: object, right: object) -> object:
        return self._binop_value(node.op, left, right, node)

    def _binop_value(
        self, op: ast.operator, left: object, right: object, node: ast.AST
    ) -> object:
        additive = isinstance(op, (ast.Add, ast.Sub))
        multiplicative = isinstance(op, (ast.Mult, ast.Div, ast.FloorDiv))
        if additive:
            if isinstance(left, _DimVal) and isinstance(right, _DimVal):
                if left.vec != right.vec:
                    self._report(
                        "dim-add-mix",
                        node,
                        f"cannot add/subtract {vector_name(left.vec)} and "
                        f"{vector_name(right.vec)}",
                    )
                    return UNKNOWN
                return left
            if isinstance(left, _DimVal) and right is NUM:
                return left
            if isinstance(right, _DimVal) and left is NUM:
                return right
            if left is NUM and right is NUM:
                return NUM
            return UNKNOWN
        if multiplicative:
            invert = not isinstance(op, ast.Mult)
            if isinstance(left, _DimVal) and isinstance(right, _DimVal):
                rvec = tuple(-x for x in right.vec) if invert else right.vec
                out = tuple(a + b for a, b in zip(left.vec, rvec))
                return self._product_result(out, left.vec, right.vec, invert, node)
            if isinstance(left, _DimVal) and right is NUM:
                return left
            if isinstance(right, _DimVal) and left is NUM:
                if invert:
                    out = tuple(-x for x in right.vec)
                    return self._product_result(
                        out, _ZERO, right.vec, invert, node
                    )
                return right
            if left is NUM and right is NUM:
                return NUM
            return UNKNOWN
        if isinstance(op, ast.Pow):
            if left is NUM and right is NUM:
                return NUM
            if isinstance(left, _DimVal) and isinstance(node, ast.BinOp):
                exponent = node.right
                if isinstance(exponent, ast.Constant) and isinstance(
                    exponent.value, int
                ):
                    out = tuple(x * exponent.value for x in left.vec)
                    return self._product_result(
                        out, left.vec, left.vec, False, node
                    )
            return UNKNOWN
        if isinstance(op, ast.Mod):
            if isinstance(left, _DimVal) and (
                isinstance(right, _DimVal) and right.vec == left.vec or right is NUM
            ):
                return left
            return UNKNOWN
        return UNKNOWN

    def _product_result(
        self,
        out: tuple[int, ...],
        left: tuple[int, ...],
        right: tuple[int, ...],
        invert: bool,
        node: ast.AST,
    ) -> object:
        if out in _NAMED:
            return _DimVal(out)
        symbol = "/" if invert else "*"
        self._report(
            "dim-product",
            node,
            f"{vector_name(left)} {symbol} {vector_name(right)} yields "
            f"{vector_name(out)}, which is not a recognized dimension",
        )
        return UNKNOWN

    # -- calls --------------------------------------------------------
    def _eval_call(self, node: ast.Call, env: dict[str, object]) -> object:
        # dataclasses.replace(obj, ...) keeps the object's type.
        chain = dotted_name(node.func)
        if chain is not None:
            resolved_chain = self._qualify(chain)
            if resolved_chain == "dataclasses.replace" and node.args:
                for kw in node.keywords:
                    self._eval(kw.value, env)
                return self._eval(node.args[0], env)

        callee = self._eval(node.func, env) if not isinstance(
            node.func, ast.Name
        ) else self._eval_name(node.func.id, env)

        # Builtins worth modelling.
        if isinstance(node.func, ast.Name) and node.func.id not in env:
            name = node.func.id
            if name in _MINMAX_BUILTINS:
                return self._minmax(node, env)
            if name in _PASSTHROUGH_BUILTINS and node.args:
                values = [self._eval(arg, env) for arg in node.args]
                for kw in node.keywords:
                    self._eval(kw.value, env)
                return values[0]
            if name == "len":
                for arg in node.args:
                    self._eval(arg, env)
                return NUM
            if name == "sum" and node.args:
                for arg in node.args:
                    self._eval(arg, env)
                return UNKNOWN

        # Evaluate all arguments exactly once, keeping values for checks.
        arg_values: dict[int, object] = {
            i: self._eval(arg, env) for i, arg in enumerate(node.args)
        }
        kw_values: dict[str, object] = {
            kw.arg: self._eval(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value, env)

        if isinstance(callee, _BoundMethod):
            self._check_args(
                callee.info, node, arg_values, kw_values, skip_self=True
            )
            return self._annotation_value(callee.info.returns)
        if isinstance(callee, _FuncRef):
            skip_self = callee.info.cls is not None and isinstance(
                node.func, ast.Attribute
            )
            self._check_args(
                callee.info, node, arg_values, kw_values, skip_self=skip_self
            )
            return self._annotation_value(callee.info.returns)
        if isinstance(callee, _ClsRef):
            self._check_ctor_args(callee.info, node, arg_values, kw_values)
            return _ObjVal(callee.info)
        return UNKNOWN

    def _qualify(self, chain: str) -> str:
        head, _, rest = chain.partition(".")
        if head in self.module.imports:
            qualified = self.module.imports[head]
            return qualified + ("." + rest if rest else "")
        return chain

    def _minmax(self, node: ast.Call, env: dict[str, object]) -> object:
        values = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self._eval(arg.value, env)
                return UNKNOWN
            values.append(self._eval(arg, env))
        for kw in node.keywords:
            self._eval(kw.value, env)
        dims = {v.vec for v in values if isinstance(v, _DimVal)}
        if len(dims) > 1:
            names = ", ".join(sorted(vector_name(d) for d in dims))
            self._report(
                "dim-add-mix", node, f"min/max over mixed dimensions: {names}"
            )
            return UNKNOWN
        if len(dims) == 1 and len(values) > 1:
            return _DimVal(next(iter(dims)))
        return UNKNOWN

    def _param_table(
        self, func: FunctionInfo, *, skip_self: bool
    ) -> tuple[list, dict[str, object]]:
        params = [p for p in func.params if p.kind in ("pos", "kwonly")]
        if skip_self and params and params[0].name in ("self", "cls"):
            params = params[1:]
        declared = {
            p.name: self._annotation_value(p.annotation) for p in params
        }
        return params, declared

    def _check_args(
        self,
        func: FunctionInfo,
        node: ast.Call,
        arg_values: dict[int, object],
        kw_values: dict[str, object],
        *,
        skip_self: bool,
    ) -> None:
        params, declared = self._param_table(func, skip_self=skip_self)
        positional = [p for p in params if p.kind == "pos"]
        for i, value in arg_values.items():
            if isinstance(node.args[i], ast.Starred):
                break
            if i >= len(positional):
                break
            self._check_one_arg(
                func, positional[i].name, declared, value, node.args[i]
            )
        for name, value in kw_values.items():
            if name in declared:
                kw_node = next(
                    (kw.value for kw in node.keywords if kw.arg == name), node
                )
                self._check_one_arg(func, name, declared, value, kw_node)

    def _check_one_arg(
        self,
        func: FunctionInfo,
        param: str,
        declared: dict[str, object],
        value: object,
        node: ast.AST,
    ) -> None:
        want = declared.get(param)
        if not isinstance(want, _DimVal) or not isinstance(value, _DimVal):
            return
        if want.vec != value.vec:
            self._report(
                "dim-arg",
                node,
                f"argument '{param}' to {func.qualname} is "
                f"{vector_name(value.vec)}, expected {vector_name(want.vec)}",
            )

    def _check_ctor_args(
        self,
        cls: ClassInfo,
        node: ast.Call,
        arg_values: dict[int, object],
        kw_values: dict[str, object],
    ) -> None:
        init = cls.methods.get("__init__")
        if init is not None:
            self._check_args(init, node, arg_values, kw_values, skip_self=True)
            return
        # Dataclass: field declaration order is the positional order.
        fields = list(cls.fields.items())
        declared = {
            name: self._annotation_value(ann) for name, ann in fields
        }
        for i, value in arg_values.items():
            if i >= len(fields) or isinstance(node.args[i], ast.Starred):
                break
            self._check_one_arg_cls(cls, fields[i][0], declared, value, node.args[i])
        for name, value in kw_values.items():
            if name in declared:
                kw_node = next(
                    (kw.value for kw in node.keywords if kw.arg == name), node
                )
                self._check_one_arg_cls(cls, name, declared, value, kw_node)

    def _check_one_arg_cls(
        self,
        cls: ClassInfo,
        field_name: str,
        declared: dict[str, object],
        value: object,
        node: ast.AST,
    ) -> None:
        want = declared.get(field_name)
        if not isinstance(want, _DimVal) or not isinstance(value, _DimVal):
            return
        if want.vec != value.vec:
            self._report(
                "dim-arg",
                node,
                f"field '{field_name}' of {cls.qualname} is "
                f"{vector_name(value.vec)}, expected {vector_name(want.vec)}",
            )


class _BoundMethod:
    __slots__ = ("info", "obj")

    def __init__(self, info: FunctionInfo, obj: _ObjVal):
        self.info = info
        self.obj = obj


def _ann_str(node: ast.expr) -> str | None:
    from repro.check.callgraph import annotation_name

    return annotation_name(node)


def check_dimensions(index: ProjectIndex, graph: CallGraph) -> list[LintViolation]:
    """Run the dimension pass over every indexed function."""
    violations: list[LintViolation] = []
    for func in index.functions.values():
        module = index.modules.get(func.module)
        if module is None:
            continue
        _FunctionChecker(func, module, index, graph, violations).run()
    return violations
